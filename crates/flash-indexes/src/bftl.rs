//! BFTL: a B-tree layer over a log-structured flash translation layer.
//!
//! Faithfulness notes (relative to Wu et al.):
//!
//! * Index records are buffered in a **reservation buffer**; when it fills, the
//!   records are packed into **log pages** (a page may carry units of many nodes) and
//!   appended — writes are therefore cheap and batched, which is BFTL's selling point.
//! * The **node translation table (NTT)** lives in main memory and maps every leaf
//!   node to the list of log pages containing its units. Reading a node means reading
//!   *every* page on its list (one synchronous read each), which is why BFTL's search
//!   performance trails the B+-tree's.
//! * When a node's list exceeds the **compaction threshold** `C`, its units are read,
//!   consolidated and rewritten to fresh pages (reducing the list back to a few
//!   entries).
//! * As a simplification, the upper (internal) levels of the B-tree are kept in main
//!   memory as a sorted directory of leaf separator keys. The original keeps them in
//!   flash under the same NTT scheme; the simplification favours BFTL (fewer reads),
//!   and BFTL still loses to the psync-driven indexes exactly as in the paper. The
//!   directory plus the NTT represent the memory footprint that the paper says crowds
//!   out BFTL's buffer pool.

use pio::IoResult;
use std::collections::BTreeMap;
use std::sync::Arc;
use storage::{CachedStore, PageId};

/// Key type (shared with the other indexes).
pub type Key = u64;
/// Value (record pointer) type.
pub type Value = u64;

/// An index unit: one logged operation on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IndexUnit {
    key: Key,
    value: Value,
    /// `true` for insert/update, `false` for delete.
    present: bool,
}

const UNIT_BYTES: usize = 24;

/// Tuning knobs of the BFTL implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BftlConfig {
    /// Reservation-buffer capacity in index units (flushed to log pages when full).
    pub reservation_units: usize,
    /// Compaction threshold `C`: maximum log pages per node before compaction.
    pub compaction_threshold: usize,
    /// Maximum units per logical leaf node before it splits.
    pub node_capacity: usize,
}

impl Default for BftlConfig {
    fn default() -> Self {
        Self {
            reservation_units: 512,
            compaction_threshold: 4,
            node_capacity: 128,
        }
    }
}

/// Operation counters of a [`Bftl`] index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BftlStats {
    /// Point searches.
    pub searches: u64,
    /// Update-type operations accepted.
    pub updates: u64,
    /// Range searches.
    pub range_searches: u64,
    /// Reservation-buffer flushes (log-page write bursts).
    pub flushes: u64,
    /// Node compactions.
    pub compactions: u64,
    /// Leaf node splits.
    pub splits: u64,
}

/// One logical leaf node of the B-tree layer.
#[derive(Debug, Clone, Default)]
struct NodeEntry {
    /// Log pages holding this node's units, in append order.
    pages: Vec<PageId>,
    /// Number of live units (estimate used for split decisions).
    unit_estimate: usize,
}

/// The BFTL index.
pub struct Bftl {
    store: Arc<CachedStore>,
    config: BftlConfig,
    /// In-memory directory: separator key → node id (first key covered by the node).
    directory: BTreeMap<Key, usize>,
    /// Node translation table: node id → its log pages.
    ntt: Vec<NodeEntry>,
    /// Reservation buffer of not-yet-logged units, per node.
    reservation: Vec<(usize, IndexUnit)>,
    stats: BftlStats,
}

impl Bftl {
    /// Creates an empty BFTL index over `store`.
    pub fn new(store: Arc<CachedStore>, config: BftlConfig) -> Self {
        let mut directory = BTreeMap::new();
        directory.insert(0, 0);
        Self {
            store,
            config,
            directory,
            ntt: vec![NodeEntry::default()],
            reservation: Vec::new(),
            stats: BftlStats::default(),
        }
    }

    /// Bulk-loads sorted entries (used to build the initial index of the experiments).
    pub fn bulk_load(store: Arc<CachedStore>, entries: &[(Key, Value)], config: BftlConfig) -> IoResult<Self> {
        let mut index = Self::new(store, config);
        for chunk in entries.chunks(config.node_capacity / 2) {
            for &(k, v) in chunk {
                index.buffer_unit(
                    k,
                    IndexUnit {
                        key: k,
                        value: v,
                        present: true,
                    },
                )?;
            }
        }
        index.flush_reservation()?;
        Ok(index)
    }

    /// The store the index performs I/O through.
    pub fn store(&self) -> &Arc<CachedStore> {
        &self.store
    }

    /// Operation counters.
    pub fn stats(&self) -> BftlStats {
        self.stats
    }

    /// Approximate main-memory footprint of the NTT + directory in bytes (the paper
    /// charges BFTL's whole memory budget to this table).
    pub fn table_bytes(&self) -> usize {
        self.ntt.iter().map(|n| 16 + n.pages.len() * 8).sum::<usize>() + self.directory.len() * 16
    }

    fn node_for(&self, key: Key) -> usize {
        *self.directory.range(..=key).next_back().map(|(_, v)| v).unwrap_or(&0)
    }

    fn units_per_page(&self) -> usize {
        self.store.page_size() / UNIT_BYTES
    }

    /// Inserts `key → value`.
    pub fn insert(&mut self, key: Key, value: Value) -> IoResult<()> {
        self.stats.updates += 1;
        self.buffer_unit(
            key,
            IndexUnit {
                key,
                value,
                present: true,
            },
        )
    }

    /// Deletes `key`.
    pub fn delete(&mut self, key: Key) -> IoResult<()> {
        self.stats.updates += 1;
        self.buffer_unit(
            key,
            IndexUnit {
                key,
                value: 0,
                present: false,
            },
        )
    }

    /// Updates `key` to a new value (same cost as an insert).
    pub fn update(&mut self, key: Key, value: Value) -> IoResult<()> {
        self.insert(key, value)
    }

    fn buffer_unit(&mut self, key: Key, unit: IndexUnit) -> IoResult<()> {
        let node = self.node_for(key);
        self.reservation.push((node, unit));
        self.ntt[node].unit_estimate += 1;
        if self.reservation.len() >= self.config.reservation_units {
            self.flush_reservation()?;
        }
        Ok(())
    }

    /// Flushes the reservation buffer: packs the buffered units into log pages
    /// (several nodes may share one page) and appends the page ids to each node's
    /// translation list.
    pub fn flush_reservation(&mut self) -> IoResult<()> {
        if self.reservation.is_empty() {
            return Ok(());
        }
        self.stats.flushes += 1;
        let per_page = self.units_per_page();
        let buffered = std::mem::take(&mut self.reservation);
        let page_size = self.store.page_size();
        let mut writes: Vec<(PageId, Vec<u8>)> = Vec::new();
        for chunk in buffered.chunks(per_page) {
            let page = self.store.allocate();
            let mut image = vec![0u8; page_size];
            for (i, (node, unit)) in chunk.iter().enumerate() {
                let off = i * UNIT_BYTES;
                image[off..off + 8].copy_from_slice(&unit.key.to_le_bytes());
                image[off + 8..off + 16].copy_from_slice(&unit.value.to_le_bytes());
                image[off + 16] = if unit.present { 1 } else { 2 };
                image[off + 17..off + 24].copy_from_slice(&(*node as u64).to_le_bytes()[..7]);
                if !self.ntt[*node].pages.contains(&page) {
                    self.ntt[*node].pages.push(page);
                }
            }
            writes.push((page, image));
        }
        // BFTL commits its log pages one sector at a time (it is not parallelism
        // aware), so the pages are written individually.
        for (page, image) in &writes {
            self.store.write_page(*page, image)?;
        }
        // Compact or split nodes whose lists or populations grew too large.
        let nodes_touched: Vec<usize> = {
            let mut v: Vec<usize> = buffered.iter().map(|&(n, _)| n).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        for node in nodes_touched {
            if self.ntt[node].pages.len() > self.config.compaction_threshold
                || self.ntt[node].unit_estimate > self.config.node_capacity
            {
                self.rebuild_node(node)?;
            }
        }
        Ok(())
    }

    /// Reads every unit of a node from its log pages and resolves them.
    fn read_node(&mut self, node: usize) -> IoResult<BTreeMap<Key, Value>> {
        let mut resolved = BTreeMap::new();
        let pages = self.ntt[node].pages.clone();
        for page in pages {
            // One synchronous read per log page: the defining cost of BFTL searches.
            let image = self.store.read_page(page)?;
            for chunk in image.chunks(UNIT_BYTES) {
                if chunk.len() < UNIT_BYTES || chunk[16] == 0 {
                    continue;
                }
                let mut node_bytes = [0u8; 8];
                node_bytes[..7].copy_from_slice(&chunk[17..24]);
                if u64::from_le_bytes(node_bytes) as usize != node {
                    continue;
                }
                let key = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"));
                let value = u64::from_le_bytes(chunk[8..16].try_into().expect("8 bytes"));
                match chunk[16] {
                    1 => {
                        resolved.insert(key, value);
                    }
                    2 => {
                        resolved.remove(&key);
                    }
                    _ => {}
                }
            }
        }
        // Apply units still sitting in the reservation buffer.
        for (n, unit) in &self.reservation {
            if *n == node {
                if unit.present {
                    resolved.insert(unit.key, unit.value);
                } else {
                    resolved.remove(&unit.key);
                }
            }
        }
        Ok(resolved)
    }

    /// Compaction / split: consolidate a node's units onto fresh pages, splitting the
    /// node when it holds too many live entries.
    fn rebuild_node(&mut self, node: usize) -> IoResult<()> {
        self.stats.compactions += 1;
        let resolved = self.read_node(node)?;
        let entries: Vec<(Key, Value)> = resolved.into_iter().collect();
        let halves: Vec<&[(Key, Value)]> = if entries.len() > self.config.node_capacity {
            self.stats.splits += 1;
            let mid = entries.len() / 2;
            vec![&entries[..mid], &entries[mid..]]
        } else {
            vec![&entries[..]]
        };
        let per_page = self.units_per_page();
        let page_size = self.store.page_size();
        for (i, half) in halves.iter().enumerate() {
            let target_node = if i == 0 {
                node
            } else {
                self.ntt.push(NodeEntry::default());
                let new_node = self.ntt.len() - 1;
                self.directory.insert(half[0].0, new_node);
                new_node
            };
            let mut pages = Vec::new();
            for chunk in half.chunks(per_page) {
                let page = self.store.allocate();
                let mut image = vec![0u8; page_size];
                for (j, &(k, v)) in chunk.iter().enumerate() {
                    let off = j * UNIT_BYTES;
                    image[off..off + 8].copy_from_slice(&k.to_le_bytes());
                    image[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
                    image[off + 16] = 1;
                    image[off + 17..off + 24].copy_from_slice(&(target_node as u64).to_le_bytes()[..7]);
                }
                self.store.write_page(page, &image)?;
                pages.push(page);
            }
            // The old log pages are dropped from this node's list but NOT freed: a log
            // page may also carry units of other nodes (that sharing is the point of
            // BFTL's commit policy), so reclaiming it requires reference counting
            // across the whole NTT. The original system reclaims pages lazily through
            // its flash garbage collector; space reclamation is out of scope here.
            self.ntt[target_node].pages = pages;
            self.ntt[target_node].unit_estimate = half.len();
            let _ = i;
        }
        Ok(())
    }

    /// Point search.
    pub fn search(&mut self, key: Key) -> IoResult<Option<Value>> {
        self.stats.searches += 1;
        let node = self.node_for(key);
        Ok(self.read_node(node)?.get(&key).copied())
    }

    /// Range search over `[lo, hi)` by visiting every node whose range intersects.
    pub fn range_search(&mut self, lo: Key, hi: Key) -> IoResult<Vec<(Key, Value)>> {
        self.stats.range_searches += 1;
        if lo >= hi {
            return Ok(Vec::new());
        }
        let nodes: Vec<usize> = {
            let start_key = *self.directory.range(..=lo).next_back().map(|(k, _)| k).unwrap_or(&0);
            self.directory.range(start_key..hi).map(|(_, &n)| n).collect()
        };
        let mut out = Vec::new();
        for node in nodes {
            for (k, v) in self.read_node(node)? {
                if k >= lo && k < hi {
                    out.push((k, v));
                }
            }
        }
        out.sort_by_key(|&(k, _)| k);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio::SimPsyncIo;
    use ssd_sim::DeviceProfile;
    use storage::{PageStore, WritePolicy};

    fn store() -> Arc<CachedStore> {
        let io = Arc::new(SimPsyncIo::with_profile(DeviceProfile::F120, 1 << 30));
        Arc::new(CachedStore::new(PageStore::new(io, 2048), 0, WritePolicy::WriteThrough))
    }

    #[test]
    fn insert_search_round_trip() {
        let mut b = Bftl::new(store(), BftlConfig::default());
        for k in 0..2_000u64 {
            b.insert(k, k * 7).unwrap();
        }
        b.flush_reservation().unwrap();
        for k in (0..2_000u64).step_by(77) {
            assert_eq!(b.search(k).unwrap(), Some(k * 7));
        }
        assert_eq!(b.search(5_000).unwrap(), None);
        assert!(b.stats().splits > 0, "2000 entries must split the initial node");
    }

    #[test]
    fn deletes_and_updates_resolve() {
        let mut b = Bftl::new(store(), BftlConfig::default());
        for k in 0..500u64 {
            b.insert(k, k).unwrap();
        }
        b.delete(100).unwrap();
        b.update(200, 999).unwrap();
        assert_eq!(b.search(100).unwrap(), None);
        assert_eq!(b.search(200).unwrap(), Some(999));
        assert_eq!(b.search(300).unwrap(), Some(300));
    }

    #[test]
    fn range_search_is_sorted_and_complete() {
        let entries: Vec<(Key, Value)> = (0..3_000u64).map(|k| (k * 2, k)).collect();
        let mut b = Bftl::bulk_load(store(), &entries, BftlConfig::default()).unwrap();
        let r = b.range_search(100, 300).unwrap();
        assert_eq!(r.len(), 100);
        assert!(r.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(r[0].0, 100);
    }

    #[test]
    fn searches_read_multiple_pages_per_node() {
        let mut b = Bftl::new(
            store(),
            BftlConfig {
                compaction_threshold: 8,
                ..Default::default()
            },
        );
        // Scatter updates so nodes accumulate several log pages.
        for round in 0..6u64 {
            for k in (0..600u64).step_by(3) {
                b.insert(k, round).unwrap();
            }
            b.flush_reservation().unwrap();
        }
        let before = b.store().store().stats().page_reads;
        b.search(300).unwrap();
        let reads = b.store().store().stats().page_reads - before;
        assert!(reads > 1, "a BFTL node read must touch several log pages, got {reads}");
    }

    #[test]
    fn compaction_bounds_the_page_lists() {
        let config = BftlConfig {
            compaction_threshold: 3,
            ..Default::default()
        };
        let mut b = Bftl::new(store(), config);
        for round in 0..20u64 {
            for k in 0..200u64 {
                b.insert(k, round).unwrap();
            }
        }
        b.flush_reservation().unwrap();
        assert!(b.stats().compactions > 0);
        for node in &b.ntt {
            assert!(
                node.pages.len() <= config.compaction_threshold + 1,
                "page list must stay bounded, got {}",
                node.pages.len()
            );
        }
    }

    #[test]
    fn table_memory_grows_with_index_size() {
        let entries: Vec<(Key, Value)> = (0..20_000u64).map(|k| (k, k)).collect();
        let b = Bftl::bulk_load(store(), &entries, BftlConfig::default()).unwrap();
        assert!(b.table_bytes() > 1_000, "NTT must account for its memory");
    }
}
