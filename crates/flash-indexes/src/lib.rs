//! # flash-indexes — the flash-aware baselines of the paper's evaluation
//!
//! Figure 12 compares the PIO B-tree against two earlier flash-aware indexes:
//!
//! * **BFTL** (Wu, Kuo, Chang — *An efficient B-tree layer implementation for
//!   flash-memory storage systems*): index records ("index units") are buffered and
//!   appended to log pages shared by many nodes; an in-memory node translation table
//!   maps every B-tree node to the list of log pages holding its units, so a node
//!   read costs several page reads while writes are batched and cheap. The paper
//!   notes that BFTL's mapping table consumes the entire memory budget, leaving no
//!   room for a buffer pool.
//! * **FD-tree** (Li, He, Yang, Luo, Yi — *Tree indexing on solid state drives*): an
//!   in-memory head tree plus a cascade of sorted runs on flash with a fixed size
//!   ratio between adjacent levels; inserts go to the head and ripple down through
//!   sequential merges, searches probe one page per level via fence pointers.
//!
//! Both implementations here are clean-room simplifications that preserve the cost
//! structure the comparison depends on (see `DESIGN.md`), driven by the same
//! [`storage::CachedStore`] substrate as the other trees and therefore measured in
//! the same simulated time.
//!
//! These baselines deliberately stay on the *blocking* psync shim
//! ([`pio::ParallelIo`], a submit-and-wait wrapper over [`pio::IoQueue`]): their
//! defining costs are one-page-at-a-time synchronous reads (BFTL's log-page
//! chains) and sequential merge writes (the FD-tree predates psync I/O), so
//! migrating them to overlapped in-flight tickets would change the very cost
//! structure the Figure-12 comparison measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bftl;
pub mod fdtree;

pub use bftl::{Bftl, BftlConfig, BftlStats};
pub use fdtree::{FdTree, FdTreeConfig, FdTreeStats};
