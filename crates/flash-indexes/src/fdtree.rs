//! FD-tree: an in-memory head tree plus a cascade of sorted runs on flash.
//!
//! Faithfulness notes (relative to Li et al.):
//!
//! * Inserts go into the **head tree** (level 0, main memory). When it fills, it is
//!   merged into level 1; when level `i` exceeds its capacity (`size ratio k` times
//!   the previous level) it is merged into level `i+1`. Merges read and write the
//!   runs **sequentially** — the access pattern FD-tree is designed around.
//! * Deletes insert tombstone ("filter") entries that cancel matching records during
//!   merges and are filtered from query results.
//! * Every level is a sorted run of fixed-size pages; searches probe **one page per
//!   level** located via fence pointers. The original stores fences inside the runs
//!   of the next level; this implementation keeps each level's fence array (first key
//!   of every page) in memory, which costs the same one-page-per-level probe.
//! * As in the paper's analysis, the point-search cost grows with the number of
//!   levels, which is why the FD-tree trails the B+-tree and the PIO B-tree on
//!   searches while being very fast on inserts.

use pio::IoResult;
use std::collections::BTreeMap;
use std::sync::Arc;
use storage::{CachedStore, PageId};

/// Key type.
pub type Key = u64;
/// Value (record pointer) type.
pub type Value = u64;

const RECORD_BYTES: usize = 17;

/// Tuning knobs of the FD-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdTreeConfig {
    /// Capacity of the in-memory head tree in records.
    pub head_capacity: usize,
    /// Size ratio `k` between adjacent levels.
    pub size_ratio: usize,
}

impl Default for FdTreeConfig {
    fn default() -> Self {
        Self {
            head_capacity: 4096,
            size_ratio: 8,
        }
    }
}

/// Operation counters of an [`FdTree`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FdTreeStats {
    /// Point searches.
    pub searches: u64,
    /// Update-type operations accepted.
    pub updates: u64,
    /// Range searches.
    pub range_searches: u64,
    /// Level-to-level merges performed.
    pub merges: u64,
}

/// One record of a sorted run: a key, a value and a tombstone flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Record {
    key: Key,
    value: Value,
    tombstone: bool,
}

/// One on-flash level: a sorted run of pages plus its in-memory fences.
#[derive(Debug, Clone, Default)]
struct Level {
    pages: Vec<PageId>,
    /// First key of each page (fence pointers).
    fences: Vec<Key>,
    records: usize,
}

/// The FD-tree.
pub struct FdTree {
    store: Arc<CachedStore>,
    config: FdTreeConfig,
    /// Level 0: the in-memory head tree. Tombstones are represented by `None`.
    head: BTreeMap<Key, Option<Value>>,
    levels: Vec<Level>,
    stats: FdTreeStats,
}

impl FdTree {
    /// Creates an empty FD-tree over `store`.
    pub fn new(store: Arc<CachedStore>, config: FdTreeConfig) -> Self {
        assert!(config.head_capacity > 0 && config.size_ratio >= 2);
        Self {
            store,
            config,
            head: BTreeMap::new(),
            levels: Vec::new(),
            stats: FdTreeStats::default(),
        }
    }

    /// Bulk-loads sorted entries by writing them directly as the bottom level.
    pub fn bulk_load(store: Arc<CachedStore>, entries: &[(Key, Value)], config: FdTreeConfig) -> IoResult<Self> {
        let mut tree = Self::new(store, config);
        if entries.is_empty() {
            return Ok(tree);
        }
        let records: Vec<Record> = entries
            .iter()
            .map(|&(key, value)| Record {
                key,
                value,
                tombstone: false,
            })
            .collect();
        // Place the bulk data at the deepest level that can hold it.
        let mut level_idx = 0usize;
        let mut cap = tree.config.head_capacity * tree.config.size_ratio;
        while cap < records.len() {
            cap *= tree.config.size_ratio;
            level_idx += 1;
        }
        while tree.levels.len() <= level_idx {
            tree.levels.push(Level::default());
        }
        let level = tree.write_run(&records)?;
        tree.levels[level_idx] = level;
        Ok(tree)
    }

    /// The store the index performs I/O through.
    pub fn store(&self) -> &Arc<CachedStore> {
        &self.store
    }

    /// Operation counters.
    pub fn stats(&self) -> FdTreeStats {
        self.stats
    }

    /// Number of on-flash levels currently in use.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    fn records_per_page(&self) -> usize {
        self.store.page_size() / RECORD_BYTES
    }

    fn level_capacity(&self, level_idx: usize) -> usize {
        self.config.head_capacity * self.config.size_ratio.pow(level_idx as u32 + 1)
    }

    /// Serialises a sorted record run into consecutive pages and returns the level.
    fn write_run(&mut self, records: &[Record]) -> IoResult<Level> {
        let per_page = self.records_per_page();
        let page_size = self.store.page_size();
        let n_pages = records.len().div_ceil(per_page).max(1);
        let first = self.store.allocate_contiguous(n_pages as u64);
        let mut level = Level {
            pages: Vec::with_capacity(n_pages),
            fences: Vec::with_capacity(n_pages),
            records: records.len(),
        };
        let mut writes: Vec<(PageId, Vec<u8>)> = Vec::new();
        for (i, chunk) in records.chunks(per_page.max(1)).enumerate() {
            let page = first + i as u64;
            let mut image = vec![0u8; page_size];
            for (j, rec) in chunk.iter().enumerate() {
                let off = j * RECORD_BYTES;
                image[off..off + 8].copy_from_slice(&rec.key.to_le_bytes());
                image[off + 8..off + 16].copy_from_slice(&rec.value.to_le_bytes());
                image[off + 16] = if rec.tombstone { 2 } else { 1 };
            }
            level.pages.push(page);
            level.fences.push(chunk[0].key);
            writes.push((page, image));
        }
        if records.is_empty() {
            level.pages.push(first);
            level.fences.push(0);
            writes.push((first, vec![0u8; page_size]));
        }
        // Merges write their output sequentially; model that as page-at-a-time writes
        // (sequential, not parallel — FD-tree predates psync I/O).
        for (page, image) in &writes {
            self.store.write_page(*page, image)?;
        }
        Ok(level)
    }

    fn read_run_page(&self, page: PageId) -> IoResult<Vec<Record>> {
        let image = self.store.read_page(page)?;
        let mut out = Vec::new();
        for chunk in image.chunks(RECORD_BYTES) {
            if chunk.len() < RECORD_BYTES || chunk[16] == 0 {
                continue;
            }
            out.push(Record {
                key: u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes")),
                value: u64::from_le_bytes(chunk[8..16].try_into().expect("8 bytes")),
                tombstone: chunk[16] == 2,
            });
        }
        Ok(out)
    }

    fn read_whole_level(&self, level: &Level) -> IoResult<Vec<Record>> {
        let mut out = Vec::new();
        for &page in &level.pages {
            out.extend(self.read_run_page(page)?);
        }
        Ok(out)
    }

    /// Inserts `key → value`.
    pub fn insert(&mut self, key: Key, value: Value) -> IoResult<()> {
        self.stats.updates += 1;
        self.head.insert(key, Some(value));
        self.maybe_cascade()
    }

    /// Deletes `key` (a tombstone entry).
    pub fn delete(&mut self, key: Key) -> IoResult<()> {
        self.stats.updates += 1;
        self.head.insert(key, None);
        self.maybe_cascade()
    }

    /// Updates `key` (same cost as an insert).
    pub fn update(&mut self, key: Key, value: Value) -> IoResult<()> {
        self.insert(key, value)
    }

    fn maybe_cascade(&mut self) -> IoResult<()> {
        if self.head.len() < self.config.head_capacity {
            return Ok(());
        }
        // Merge the head into level 1, then ripple down while levels overflow.
        let head: Vec<Record> = std::mem::take(&mut self.head)
            .into_iter()
            .map(|(key, v)| Record {
                key,
                value: v.unwrap_or(0),
                tombstone: v.is_none(),
            })
            .collect();
        self.merge_into_level(0, head)?;
        let mut i = 0;
        while i < self.levels.len() {
            if self.levels[i].records > self.level_capacity(i) {
                let run = self.read_whole_level(&self.levels[i].clone())?;
                for &page in &self.levels[i].pages {
                    self.store.free(page);
                }
                self.levels[i] = self.write_run(&[])?;
                self.levels[i].records = 0;
                self.merge_into_level(i + 1, run)?;
            }
            i += 1;
        }
        Ok(())
    }

    /// Merges `incoming` (sorted by key, later entries win) into on-flash level
    /// `level_idx`, creating the level if needed.
    fn merge_into_level(&mut self, level_idx: usize, incoming: Vec<Record>) -> IoResult<()> {
        self.stats.merges += 1;
        while self.levels.len() <= level_idx {
            self.levels.push(Level::default());
        }
        let existing = if self.levels[level_idx].pages.is_empty() {
            Vec::new()
        } else {
            self.read_whole_level(&self.levels[level_idx].clone())?
        };
        for &page in &self.levels[level_idx].pages {
            self.store.free(page);
        }
        // Merge: the incoming run is newer, so its records win; tombstones at the
        // bottom level are dropped entirely.
        let mut merged: BTreeMap<Key, Record> = BTreeMap::new();
        for rec in existing.into_iter().chain(incoming) {
            merged.insert(rec.key, rec);
        }
        let is_bottom = level_idx + 1 >= self.levels.len();
        let records: Vec<Record> = merged.into_values().filter(|r| !(is_bottom && r.tombstone)).collect();
        self.levels[level_idx] = self.write_run(&records)?;
        Ok(())
    }

    /// Point search: the head tree, then one fence-guided page per level.
    pub fn search(&mut self, key: Key) -> IoResult<Option<Value>> {
        self.stats.searches += 1;
        if let Some(v) = self.head.get(&key) {
            return Ok(*v);
        }
        for level in &self.levels {
            if level.pages.is_empty() {
                continue;
            }
            let idx = match level.fences.binary_search(&key) {
                Ok(i) => i,
                Err(0) => 0,
                Err(i) => i - 1,
            };
            let records = self.read_run_page(level.pages[idx])?;
            if let Some(rec) = records.iter().find(|r| r.key == key) {
                return Ok(if rec.tombstone { None } else { Some(rec.value) });
            }
        }
        Ok(None)
    }

    /// Range search over `[lo, hi)`: scans the overlapping pages of every level and
    /// merges, newer levels winning.
    pub fn range_search(&mut self, lo: Key, hi: Key) -> IoResult<Vec<(Key, Value)>> {
        self.stats.range_searches += 1;
        if lo >= hi {
            return Ok(Vec::new());
        }
        let mut merged: BTreeMap<Key, Option<Value>> = BTreeMap::new();
        // Older (deeper) levels first so newer records overwrite them.
        for level in self.levels.iter().rev() {
            if level.pages.is_empty() {
                continue;
            }
            let start = match level.fences.binary_search(&lo) {
                Ok(i) => i,
                Err(0) => 0,
                Err(i) => i - 1,
            };
            for (idx, &page) in level.pages.iter().enumerate().skip(start) {
                if level.fences[idx] >= hi {
                    break;
                }
                for rec in self.read_run_page(page)? {
                    if rec.key >= lo && rec.key < hi {
                        merged.insert(rec.key, if rec.tombstone { None } else { Some(rec.value) });
                    }
                }
            }
        }
        for (&key, v) in self.head.range(lo..hi) {
            merged.insert(key, *v);
        }
        Ok(merged.into_iter().filter_map(|(k, v)| v.map(|v| (k, v))).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio::SimPsyncIo;
    use ssd_sim::DeviceProfile;
    use storage::{PageStore, WritePolicy};

    fn store() -> Arc<CachedStore> {
        let io = Arc::new(SimPsyncIo::with_profile(DeviceProfile::F120, 1 << 30));
        Arc::new(CachedStore::new(
            PageStore::new(io, 2048),
            64,
            WritePolicy::WriteThrough,
        ))
    }

    fn small_config() -> FdTreeConfig {
        FdTreeConfig {
            head_capacity: 128,
            size_ratio: 4,
        }
    }

    #[test]
    fn insert_search_round_trip_with_cascades() {
        let mut t = FdTree::new(store(), small_config());
        for k in 0..5_000u64 {
            t.insert(k, k + 1).unwrap();
        }
        assert!(t.levels() >= 2, "5000 entries with a 128-entry head must cascade");
        assert!(t.stats().merges > 0);
        for k in (0..5_000u64).step_by(97) {
            assert_eq!(t.search(k).unwrap(), Some(k + 1), "key {k}");
        }
        assert_eq!(t.search(10_000).unwrap(), None);
    }

    #[test]
    fn deletes_tombstone_and_updates_overwrite() {
        let mut t = FdTree::new(store(), small_config());
        for k in 0..1_000u64 {
            t.insert(k, k).unwrap();
        }
        t.delete(500).unwrap();
        t.update(600, 999).unwrap();
        assert_eq!(t.search(500).unwrap(), None);
        assert_eq!(t.search(600).unwrap(), Some(999));
        // Push everything through more cascades and re-check.
        for k in 1_000..3_000u64 {
            t.insert(k, k).unwrap();
        }
        assert_eq!(t.search(500).unwrap(), None);
        assert_eq!(t.search(600).unwrap(), Some(999));
    }

    #[test]
    fn bulk_load_places_data_in_a_deep_level() {
        let entries: Vec<(Key, Value)> = (0..20_000u64).map(|k| (k * 2, k)).collect();
        let mut t = FdTree::bulk_load(store(), &entries, small_config()).unwrap();
        assert_eq!(t.search(200).unwrap(), Some(100));
        assert_eq!(t.search(201).unwrap(), None);
        assert!(t.levels() >= 2);
    }

    #[test]
    fn range_search_merges_levels_and_head() {
        let entries: Vec<(Key, Value)> = (0..2_000u64).map(|k| (k * 2, k)).collect();
        let mut t = FdTree::bulk_load(store(), &entries, small_config()).unwrap();
        t.delete(100).unwrap();
        t.insert(101, 7).unwrap();
        let r = t.range_search(90, 110).unwrap();
        assert!(r.contains(&(101, 7)));
        assert!(!r.iter().any(|&(k, _)| k == 100));
        assert!(r.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn search_reads_at_most_one_page_per_level() {
        let entries: Vec<(Key, Value)> = (0..30_000u64).map(|k| (k, k)).collect();
        let mut t = FdTree::bulk_load(store(), &entries, small_config()).unwrap();
        t.store().drop_cache();
        let before = t.store().store().stats().page_reads;
        t.search(15_000).unwrap();
        let reads = t.store().store().stats().page_reads - before;
        assert!(
            reads as usize <= t.levels(),
            "fence-guided search must read at most one page per level: {reads} reads, {} levels",
            t.levels()
        );
    }

    #[test]
    fn inserts_are_cheaper_than_a_btree_style_read_modify_write() {
        // The defining property: an insert's amortised I/O is far below one page
        // write per operation.
        let mut t = FdTree::new(
            store(),
            FdTreeConfig {
                head_capacity: 1024,
                size_ratio: 8,
            },
        );
        for k in 0..10_000u64 {
            t.insert(k, k).unwrap();
        }
        let writes = t.store().store().stats().page_writes;
        assert!(
            writes < 2_000,
            "10k inserts should need far fewer than 10k page writes, got {writes}"
        );
    }
}
