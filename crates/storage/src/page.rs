//! Page identifiers and small helpers shared by the storage layer.

/// Logical page identifier within a [`crate::PageStore`].
///
/// Page 0 is a valid, allocatable page; [`INVALID_PAGE`] is the sentinel used for
/// "no page" (for example the right-sibling pointer of the right-most leaf).
pub type PageId = u64;

/// Sentinel value meaning "no page".
pub const INVALID_PAGE: PageId = u64::MAX;

/// Returns the byte offset of `page` in a store with `page_size`-byte pages.
pub fn page_offset(page: PageId, page_size: usize) -> u64 {
    page * page_size as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_scale_with_page_size() {
        assert_eq!(page_offset(0, 4096), 0);
        assert_eq!(page_offset(3, 4096), 12288);
        assert_eq!(page_offset(3, 2048), 6144);
    }

    #[test]
    fn invalid_page_is_distinct_from_real_pages() {
        assert_ne!(INVALID_PAGE, 0);
        assert_ne!(INVALID_PAGE, 1);
    }
}
