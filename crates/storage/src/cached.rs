//! A page store with an LRU buffer pool in front of it.
//!
//! This is the component the indexes talk to. It composes a [`PageStore`] with a
//! [`BufferPool`] and applies the chosen [`WritePolicy`]:
//!
//! * the baseline B+-tree and B-link tree use **write-back** (a conventional no-force
//!   buffer manager: dirty nodes are written on eviction), and
//! * the PIO B-tree uses **write-through** (it keeps no dirty buffers; all node writes
//!   happen inside bupdate via psync I/O).
//!
//! Batched reads check the pool first and fetch only the missing pages, in one psync
//! call, so a warm pool automatically reduces the outstanding-I/O level — exactly the
//! behaviour the cost model of Section 3.5 assumes.
//!
//! ## Page integrity
//!
//! Flash rots silently: a page can come back from the device with flipped bits
//! and no error. The cached store therefore keeps an **in-memory checksum
//! sidecar**: every write path that reaches the device records an FNV-1a
//! checksum per page, and every read that fetches from the device verifies the
//! returned bytes against the recorded value. A mismatch is counted, re-read
//! **once** (in-flight corruption — a bad transfer, an injected bit flip —
//! clears on the second read), and only a *persistent* mismatch surfaces as
//! [`pio::IoError::Corruption`]; corrupt bytes are never returned to a caller.
//! [`CachedStore::scrub_step`] walks the tracked pages incrementally off the
//! foreground path (the engine's maintenance tick drives it), re-reading and
//! verifying each, and heals a rotted page from a clean pooled copy when one
//! exists. The sidecar is per-store-handle state, not an on-disk format: after
//! a restart it repopulates as pages are rewritten, so verification covers
//! everything written through this handle since open.

use crate::bufpool::{BufferPool, BufferPoolStats, WritePolicy};
use crate::leaf_cache::{AccessHint, LeafCache, LeafCacheStats};
use crate::page::PageId;
use crate::store::{PageStore, ReadTicket, WriteTicket};
use parking_lot::Mutex;
use pio::{IoError, IoResult};
use std::collections::BTreeMap;

/// FNV-1a over a page image — the same checksum the WAL uses for its records:
/// cheap, deterministic, and plenty to catch bit rot (this is integrity
/// checking, not cryptography).
fn page_checksum(data: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in data {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Counters of the checksum sidecar (see the [module docs](self)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityStats {
    /// Device reads whose payload failed checksum verification.
    pub corruption_detected: u64,
    /// Detected mismatches that cleared on the single re-read (in-flight
    /// corruption: the stored data was fine).
    pub corruption_recovered: u64,
    /// Pages validated by [`CachedStore::scrub_step`] since open.
    pub scrubbed_pages: u64,
    /// Persistent mismatches found by scrub (the stored page is rotted).
    pub scrub_corruptions: u64,
    /// Rotted pages scrub repaired by rewriting a verified cached copy.
    pub scrub_healed: u64,
}

impl IntegrityStats {
    /// Folds another store's counters into this one (engine-level roll-ups).
    pub fn merge(&mut self, other: &IntegrityStats) {
        self.corruption_detected += other.corruption_detected;
        self.corruption_recovered += other.corruption_recovered;
        self.scrubbed_pages += other.scrubbed_pages;
        self.scrub_corruptions += other.scrub_corruptions;
        self.scrub_healed += other.scrub_healed;
    }
}

/// The outcome of one [`CachedStore::scrub_step`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Pages read back and verified this step.
    pub scanned: usize,
    /// Persistent mismatches found this step (after the one re-read).
    pub corrupt: usize,
    /// Of those, pages repaired from a verified cached copy.
    pub healed: usize,
    /// `true` when the cursor wrapped past the last tracked page — one full
    /// pass over the store has completed.
    pub wrapped: bool,
}

/// The checksum sidecar: recorded page checksums, the scrub cursor, and the
/// integrity counters, all behind one short-lived lock (never held across
/// device I/O).
#[derive(Debug, Default)]
struct IntegrityState {
    checksums: BTreeMap<PageId, u32>,
    scrub_cursor: PageId,
    stats: IntegrityStats,
}

/// An in-flight cache-aware page-batch read: pool hits are captured at submission,
/// the misses travel as one in-flight batch. Redeemed with
/// [`CachedStore::complete_read_pages`].
#[derive(Debug)]
#[must_use = "an in-flight read must be completed to obtain its buffers"]
pub struct CachedReadTicket {
    /// Hit slots filled at submission; miss slots are `None` until completion.
    results: Vec<Option<Vec<u8>>>,
    /// `(slot, page)` of every miss, in submission order of the miss batch.
    missing: Vec<(usize, PageId)>,
    ticket: ReadTicket,
}

/// An in-flight multi-region read. Region reads bypass the pool (see
/// [`CachedStore::read_region`]) but consult the optional [`LeafCache`]:
/// leaf-cache hits (and all-single-page batches, which go through the page
/// cache) are captured at submission; only the misses travel to the device.
#[derive(Debug)]
#[must_use = "an in-flight read must be completed to obtain its buffers"]
pub struct RegionReadTicket {
    /// Slots filled at submission (page-cache path or leaf-cache hits).
    results: Vec<Option<Vec<u8>>>,
    /// `(slot, first page, page count)` of every region sent to the device.
    missing: Vec<(usize, PageId, u64)>,
    /// The in-flight device batch for `missing`; `None` when everything hit.
    ticket: Option<ReadTicket>,
    /// Admission hint applied when the misses are installed at completion.
    hint: AccessHint,
}

/// An in-flight multi-region write. Cached copies of the overlapped pages are
/// invalidated at submission; durability is observed by
/// [`CachedStore::complete_write_regions`].
#[derive(Debug)]
#[must_use = "an in-flight write must be completed to observe durability"]
pub enum RegionWriteTicket {
    /// Went through the (blocking) single-page cache path at submission.
    Ready,
    /// In flight on the device.
    Pending(WriteTicket),
}

/// A [`PageStore`] fronted by an LRU [`BufferPool`] for single pages and an
/// optional scan-resistant [`LeafCache`] for the multi-page leaf regions that
/// bypass the pool.
#[derive(Debug)]
pub struct CachedStore {
    store: PageStore,
    pool: Mutex<BufferPool>,
    policy: WritePolicy,
    /// Disabled (`None`) unless [`CachedStore::set_leaf_cache`] installs one,
    /// so default construction keeps the historic region-read behaviour.
    leaf: Mutex<Option<LeafCache>>,
    integrity: Mutex<IntegrityState>,
}

impl CachedStore {
    /// Creates a cached store with a pool of `capacity_pages` pages and the given
    /// write policy. The leaf-region cache starts disabled; see
    /// [`CachedStore::set_leaf_cache`].
    pub fn new(store: PageStore, capacity_pages: u64, policy: WritePolicy) -> Self {
        Self {
            store,
            pool: Mutex::new(BufferPool::new(capacity_pages)),
            policy,
            leaf: Mutex::new(None),
            integrity: Mutex::new(IntegrityState::default()),
        }
    }

    /// The checksum sidecar's counters.
    pub fn integrity_stats(&self) -> IntegrityStats {
        self.integrity.lock().stats
    }

    /// Pages currently covered by a recorded checksum (scrub's working set).
    pub fn tracked_pages(&self) -> usize {
        self.integrity.lock().checksums.len()
    }

    /// Records the checksum of every full page of a region image that just
    /// reached (or is in flight to) the device. A trailing partial page gets
    /// its entry *removed* — its device content is no longer fully known.
    fn record_region(&self, first: PageId, data: &[u8]) {
        let page_size = self.page_size();
        let mut integrity = self.integrity.lock();
        let mut chunks = data.chunks_exact(page_size);
        let mut page = first;
        for chunk in chunks.by_ref() {
            integrity.checksums.insert(page, page_checksum(chunk));
            page += 1;
        }
        if !chunks.remainder().is_empty() {
            integrity.checksums.remove(&page);
        }
    }

    /// Records the checksums of single-page writes reaching the device.
    fn record_pages(&self, pages: &[(PageId, &[u8])]) {
        let mut integrity = self.integrity.lock();
        for (p, data) in pages {
            integrity.checksums.insert(*p, page_checksum(data));
        }
    }

    /// Verifies one device-fetched page against its recorded checksum,
    /// re-reading once on a mismatch. Returns the verified bytes (the re-read
    /// copy when the first transfer was corrupt). Pages without a recorded
    /// checksum — written before this handle opened — pass through unverified.
    fn verify_page(&self, page: PageId, data: Vec<u8>) -> IoResult<Vec<u8>> {
        let Some(expected) = self.integrity.lock().checksums.get(&page).copied() else {
            return Ok(data);
        };
        if page_checksum(&data) == expected {
            return Ok(data);
        }
        self.integrity.lock().stats.corruption_detected += 1;
        let reread = self.store.read_page(page)?;
        // A concurrent writer may have replaced the page (and its checksum)
        // between the read and the verify; judge the re-read against the
        // checksum recorded *now*.
        let expected = self.integrity.lock().checksums.get(&page).copied();
        if expected.is_none_or(|e| page_checksum(&reread) == e) {
            self.integrity.lock().stats.corruption_recovered += 1;
            return Ok(reread);
        }
        Err(Self::corruption_at(page, self.page_size()))
    }

    /// Verifies a device-fetched multi-page region, re-reading the whole
    /// region once if any covered page mismatches.
    fn verify_region(&self, first: PageId, n_pages: u64, data: Vec<u8>) -> IoResult<Vec<u8>> {
        if self.region_matches(first, &data) {
            return Ok(data);
        }
        self.integrity.lock().stats.corruption_detected += 1;
        let reread = self.store.read_region(first, n_pages)?;
        if self.region_matches(first, &reread) {
            self.integrity.lock().stats.corruption_recovered += 1;
            return Ok(reread);
        }
        let bad = self
            .first_region_mismatch(first, &reread)
            .expect("region failed verification");
        Err(Self::corruption_at(bad, self.page_size()))
    }

    /// Whether every *tracked* page covered by a region image matches its
    /// recorded checksum.
    fn region_matches(&self, first: PageId, data: &[u8]) -> bool {
        self.first_region_mismatch(first, data).is_none()
    }

    fn first_region_mismatch(&self, first: PageId, data: &[u8]) -> Option<PageId> {
        let page_size = self.page_size();
        let integrity = self.integrity.lock();
        for (i, chunk) in data.chunks_exact(page_size).enumerate() {
            let page = first + i as u64;
            if let Some(&expected) = integrity.checksums.get(&page) {
                if page_checksum(chunk) != expected {
                    return Some(page);
                }
            }
        }
        None
    }

    fn corruption_at(page: PageId, page_size: usize) -> IoError {
        IoError::Corruption {
            offset: page * page_size as u64,
            len: page_size as u64,
        }
    }

    /// Installs (or, with `capacity_pages == 0`, removes) the scan-resistant
    /// leaf-region cache. Replaces any existing cache, discarding its contents
    /// and counters.
    pub fn set_leaf_cache(&self, capacity_pages: u64) {
        *self.leaf.lock() = if capacity_pages == 0 {
            None
        } else {
            Some(LeafCache::new(capacity_pages))
        };
    }

    /// Leaf-cache statistics (zeros while the cache is disabled).
    pub fn leaf_cache_stats(&self) -> LeafCacheStats {
        self.leaf.lock().as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Drops the leaf-cache region (if any) containing `page`.
    fn invalidate_leaf_page(&self, page: PageId) {
        if let Some(cache) = self.leaf.lock().as_mut() {
            cache.invalidate_page(page);
        }
    }

    /// Drops every leaf-cache region intersecting `[first, first + n)`.
    fn invalidate_leaf_range(&self, first: PageId, n: u64) {
        if let Some(cache) = self.leaf.lock().as_mut() {
            cache.invalidate_range(first, n);
        }
    }

    /// The underlying page store.
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// The write policy in effect.
    pub fn policy(&self) -> WritePolicy {
        self.policy
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> usize {
        self.store.page_size()
    }

    /// Buffer-pool statistics.
    pub fn pool_stats(&self) -> BufferPoolStats {
        self.pool.lock().stats()
    }

    /// Total simulated / wall-clock I/O time spent by the underlying backend, µs.
    pub fn io_elapsed_us(&self) -> f64 {
        self.store.io_elapsed_us()
    }

    /// The backend's advisory queue depth (see
    /// [`pio::IoQueue::queue_depth_hint`]), used to resolve `Auto` pipeline
    /// depths at tree construction.
    pub fn queue_depth_hint(&self) -> Option<usize> {
        self.store.queue_depth_hint()
    }

    /// Allocates a page (delegates to the store).
    pub fn allocate(&self) -> PageId {
        self.store.allocate()
    }

    /// Allocates a contiguous run of pages (delegates to the store).
    pub fn allocate_contiguous(&self, n: u64) -> PageId {
        self.store.allocate_contiguous(n)
    }

    /// Raises the allocation frontier to at least `pages` (reopen path — see
    /// [`PageStore::ensure_high_water`]).
    pub fn ensure_high_water(&self, pages: u64) {
        self.store.ensure_high_water(pages)
    }

    /// Frees a page and drops any cached copy. If the cached copy was dirty it is
    /// intentionally discarded — the page no longer belongs to the caller.
    pub fn free(&self, page: PageId) {
        self.pool.lock().remove(page);
        self.invalidate_leaf_page(page);
        self.integrity.lock().checksums.remove(&page);
        self.store.free(page);
    }

    fn write_back(&self, victims: Vec<crate::bufpool::Evicted>) -> IoResult<()> {
        let dirty: Vec<(PageId, Vec<u8>)> = victims
            .into_iter()
            .filter(|v| v.dirty)
            .map(|v| (v.page, v.data))
            .collect();
        if dirty.is_empty() {
            return Ok(());
        }
        let refs: Vec<(PageId, &[u8])> = dirty.iter().map(|(p, d)| (*p, d.as_slice())).collect();
        self.record_pages(&refs);
        self.store.write_pages(&refs)
    }

    /// Reads one page through the cache. Device fetches are verified against
    /// the checksum sidecar (see the [module docs](self)).
    pub fn read_page(&self, page: PageId) -> IoResult<Vec<u8>> {
        if let Some(hit) = self.pool.lock().get(page) {
            return Ok(hit);
        }
        let data = self.verify_page(page, self.store.read_page(page)?)?;
        let victims = self.pool.lock().insert(page, data.clone(), false, 1);
        self.write_back(victims)?;
        Ok(data)
    }

    /// Reads many pages through the cache; the missing ones are fetched with a single
    /// psync call. Results are returned in the order of `pages`.
    pub fn read_pages(&self, pages: &[PageId]) -> IoResult<Vec<Vec<u8>>> {
        self.complete_read_pages(self.submit_read_pages(pages)?)
    }

    /// Submits a cache-aware batched page read without waiting: pool hits are
    /// captured immediately, the misses go to the device as one in-flight batch
    /// that overlaps whatever else is outstanding on the backend.
    pub fn submit_read_pages(&self, pages: &[PageId]) -> IoResult<CachedReadTicket> {
        let mut results: Vec<Option<Vec<u8>>> = vec![None; pages.len()];
        let mut missing: Vec<(usize, PageId)> = Vec::new();
        {
            let mut pool = self.pool.lock();
            for (i, &p) in pages.iter().enumerate() {
                match pool.get(p) {
                    Some(hit) => results[i] = Some(hit),
                    None => missing.push((i, p)),
                }
            }
        }
        let ids: Vec<PageId> = missing.iter().map(|&(_, p)| p).collect();
        let ticket = self.store.submit_read_pages(&ids)?;
        Ok(CachedReadTicket {
            results,
            missing,
            ticket,
        })
    }

    /// Waits for an in-flight page-batch read, installs the fetched pages in the
    /// pool, and returns the buffers in the order of the submitted batch.
    pub fn complete_read_pages(&self, ticket: CachedReadTicket) -> IoResult<Vec<Vec<u8>>> {
        let CachedReadTicket {
            mut results,
            missing,
            ticket,
        } = ticket;
        let fetched = self.store.complete_read(ticket)?;
        if !missing.is_empty() {
            let verified: Vec<(usize, PageId, Vec<u8>)> = missing
                .into_iter()
                .zip(fetched)
                .map(|((i, p), data)| Ok((i, p, self.verify_page(p, data)?)))
                .collect::<IoResult<_>>()?;
            let mut victims = Vec::new();
            {
                let mut pool = self.pool.lock();
                for (i, p, data) in verified {
                    victims.extend(pool.insert(p, data.clone(), false, 1));
                    results[i] = Some(data);
                }
            }
            self.write_back(victims)?;
        }
        Ok(results.into_iter().map(|r| r.expect("filled above")).collect())
    }

    /// Writes one page according to the write policy. A leaf-cache region
    /// covering the page goes stale and is invalidated (bupdate's leaf-segment
    /// appends land *inside* cached regions).
    pub fn write_page(&self, page: PageId, data: &[u8]) -> IoResult<()> {
        self.invalidate_leaf_page(page);
        match self.policy {
            WritePolicy::WriteThrough => {
                self.record_pages(&[(page, data)]);
                self.store.write_page(page, data)?;
                let victims = self.pool.lock().insert(page, data.to_vec(), false, 1);
                self.write_back(victims)
            }
            WritePolicy::WriteBack => {
                let victims = self.pool.lock().insert(page, data.to_vec(), true, 1);
                self.write_back(victims)
            }
        }
    }

    /// Writes many pages according to the write policy; write-through issues a single
    /// psync call for the whole group. Leaf-cache regions covering any of the
    /// pages are invalidated.
    pub fn write_pages(&self, pages: &[(PageId, &[u8])]) -> IoResult<()> {
        {
            let mut leaf = self.leaf.lock();
            if let Some(cache) = leaf.as_mut() {
                for (p, _) in pages {
                    cache.invalidate_page(*p);
                }
            }
        }
        match self.policy {
            WritePolicy::WriteThrough => {
                self.record_pages(pages);
                self.store.write_pages(pages)?;
                let mut victims = Vec::new();
                {
                    let mut pool = self.pool.lock();
                    for (p, data) in pages {
                        victims.extend(pool.insert(*p, data.to_vec(), false, 1));
                    }
                }
                self.write_back(victims)
            }
            WritePolicy::WriteBack => {
                let mut victims = Vec::new();
                {
                    let mut pool = self.pool.lock();
                    for (p, data) in pages {
                        victims.extend(pool.insert(*p, data.to_vec(), true, 1));
                    }
                }
                self.write_back(victims)
            }
        }
    }

    /// Reads a multi-page region with the default [`AccessHint::Point`] hint.
    /// Regions bypass the *pool* entirely: a region and its constituent pages
    /// would otherwise be cached under different keys and go stale with respect
    /// to each other. Because the pool is write-through (for the callers that
    /// use regions), the device always holds the latest data. The optional
    /// [`LeafCache`] *is* consulted — it caches whole regions under the first
    /// page and is invalidated by every write path that overlaps it.
    pub fn read_region(&self, first: PageId, n_pages: u64) -> IoResult<Vec<u8>> {
        self.read_region_hinted(first, n_pages, AccessHint::Point)
    }

    /// Reads a multi-page region, consulting the leaf cache with the given
    /// hint: `Point` misses are admitted after the fetch, `Scan` misses bypass
    /// admission so streams cannot evict the point working set.
    pub fn read_region_hinted(&self, first: PageId, n_pages: u64, hint: AccessHint) -> IoResult<Vec<u8>> {
        if n_pages == 1 {
            // A single-page region is just a page: serve it through the page cache.
            return self.read_page(first);
        }
        if let Some(cache) = self.leaf.lock().as_mut() {
            if let Some(data) = cache.get(first, hint) {
                return Ok(data);
            }
        }
        let data = self.verify_region(first, n_pages, self.store.read_region(first, n_pages)?)?;
        if hint == AccessHint::Point {
            if let Some(cache) = self.leaf.lock().as_mut() {
                cache.insert(first, n_pages, data.clone());
            }
        }
        Ok(data)
    }

    /// Reads several multi-page regions with a single psync call (bypassing the pool,
    /// see [`CachedStore::read_region`]). Single-page regions go through the page
    /// cache instead.
    pub fn read_regions(&self, regions: &[(PageId, u64)]) -> IoResult<Vec<Vec<u8>>> {
        self.complete_read_regions(self.submit_read_regions(regions)?)
    }

    /// Submits a multi-region read with the default [`AccessHint::Point`] hint.
    pub fn submit_read_regions(&self, regions: &[(PageId, u64)]) -> IoResult<RegionReadTicket> {
        self.submit_read_regions_hinted(regions, AccessHint::Point)
    }

    /// Submits a multi-region read without waiting for it. All-single-page batches
    /// are served through the page cache at submission (their ticket completes
    /// immediately). Otherwise leaf-cache hits are captured at submission and
    /// only the missing regions go to the device as one in-flight batch.
    pub fn submit_read_regions_hinted(
        &self,
        regions: &[(PageId, u64)],
        hint: AccessHint,
    ) -> IoResult<RegionReadTicket> {
        if regions.iter().all(|&(_, n)| n == 1) {
            let pages: Vec<PageId> = regions.iter().map(|&(p, _)| p).collect();
            return Ok(RegionReadTicket {
                results: self.read_pages(&pages)?.into_iter().map(Some).collect(),
                missing: Vec::new(),
                ticket: None,
                hint,
            });
        }
        let mut results: Vec<Option<Vec<u8>>> = vec![None; regions.len()];
        let mut missing: Vec<(usize, PageId, u64)> = Vec::new();
        {
            let mut leaf = self.leaf.lock();
            match leaf.as_mut() {
                Some(cache) => {
                    for (i, &(p, n)) in regions.iter().enumerate() {
                        match cache.get(p, hint) {
                            Some(data) => results[i] = Some(data),
                            None => missing.push((i, p, n)),
                        }
                    }
                }
                None => missing.extend(regions.iter().enumerate().map(|(i, &(p, n))| (i, p, n))),
            }
        }
        let ticket = if missing.is_empty() {
            None
        } else {
            let to_fetch: Vec<(PageId, u64)> = missing.iter().map(|&(_, p, n)| (p, n)).collect();
            Some(self.store.submit_read_regions(&to_fetch)?)
        };
        Ok(RegionReadTicket {
            results,
            missing,
            ticket,
            hint,
        })
    }

    /// Waits for an in-flight multi-region read and returns one buffer per region,
    /// in submission order. Device-fetched regions are admitted to the leaf
    /// cache according to the submission hint (`Scan` fetches bypass it).
    pub fn complete_read_regions(&self, ticket: RegionReadTicket) -> IoResult<Vec<Vec<u8>>> {
        let RegionReadTicket {
            mut results,
            missing,
            ticket,
            hint,
        } = ticket;
        if let Some(ticket) = ticket {
            let fetched = self.store.complete_read(ticket)?;
            let verified: Vec<(usize, PageId, u64, Vec<u8>)> = missing
                .into_iter()
                .zip(fetched)
                .map(|((i, p, n), data)| Ok((i, p, n, self.verify_region(p, n, data)?)))
                .collect::<IoResult<_>>()?;
            let mut leaf = self.leaf.lock();
            for (i, p, n, data) in verified {
                if hint == AccessHint::Point {
                    if let Some(cache) = leaf.as_mut() {
                        cache.insert(p, n, data.clone());
                    }
                }
                results[i] = Some(data);
            }
        }
        Ok(results.into_iter().map(|r| r.expect("filled above")).collect())
    }

    /// Writes a multi-page region straight through (regions are never kept dirty) and
    /// invalidates any individually cached page the region overlaps.
    pub fn write_region(&self, first: PageId, data: &[u8]) -> IoResult<()> {
        if data.len() == self.page_size() {
            return self.write_page(first, data);
        }
        self.record_region(first, data);
        self.store.write_region(first, data)?;
        let n = (data.len() / self.page_size()) as u64;
        self.invalidate_leaf_range(first, n);
        let mut pool = self.pool.lock();
        for p in first..first + n {
            pool.remove(p);
        }
        Ok(())
    }

    /// Writes several multi-page regions with one psync call and invalidates the
    /// individually cached pages they overlap. Single-page regions go through the
    /// page path (and therefore stay cached).
    pub fn write_regions(&self, regions: &[(PageId, &[u8])]) -> IoResult<()> {
        self.complete_write_regions(self.submit_write_regions(regions)?)
    }

    /// Submits a multi-region write without waiting for it. The region images are
    /// captured at submission and the overlapped cached pages are invalidated
    /// immediately. All-single-page batches go through the (blocking) page path.
    ///
    /// Ordering: the simulated backends apply the data at submission, so a read
    /// issued while the write is in flight sees the new bytes. The real-file
    /// backend gives **no** order between an in-flight write and a later read —
    /// callers must not read pages overlapped by a write they have not completed
    /// yet (the tree's pipelines only overlap batches on disjoint pages).
    pub fn submit_write_regions(&self, regions: &[(PageId, &[u8])]) -> IoResult<RegionWriteTicket> {
        if regions.iter().all(|(_, d)| d.len() == self.page_size()) {
            self.write_pages(regions)?;
            return Ok(RegionWriteTicket::Ready);
        }
        // Checksums are recorded at submission: the image is captured here and
        // this is the last moment the bytes are in hand. A completion failure
        // leaves the device state unknown either way — the stale checksum then
        // makes the next read of the range fail verification, which is the
        // conservative outcome.
        for (p, data) in regions {
            self.record_region(*p, data);
        }
        let ticket = self.store.submit_write_regions(regions)?;
        for (p, data) in regions {
            let n = (data.len() / self.page_size()) as u64;
            self.invalidate_leaf_range(*p, n);
        }
        let mut pool = self.pool.lock();
        for (p, data) in regions {
            let n = (data.len() / self.page_size()) as u64;
            for page in *p..*p + n {
                pool.remove(page);
            }
        }
        Ok(RegionWriteTicket::Pending(ticket))
    }

    /// Waits for an in-flight multi-region write to become durable.
    pub fn complete_write_regions(&self, ticket: RegionWriteTicket) -> IoResult<()> {
        match ticket {
            RegionWriteTicket::Ready => Ok(()),
            RegionWriteTicket::Pending(ticket) => self.store.complete_write(ticket),
        }
    }

    /// Flushes every dirty page to the store (one psync call) — the checkpoint /
    /// shutdown path of the write-back policy.
    pub fn flush(&self) -> IoResult<()> {
        let dirty = self.pool.lock().take_dirty();
        if dirty.is_empty() {
            return Ok(());
        }
        let refs: Vec<(PageId, &[u8])> = dirty.iter().map(|(p, d)| (*p, d.as_slice())).collect();
        self.record_pages(&refs);
        self.store.write_pages(&refs)
    }

    /// Drops every cached entry — pool pages and leaf regions — without writing
    /// anything (used between experiment phases and by crash simulation to
    /// start from a cold cache).
    pub fn drop_cache(&self) {
        self.pool.lock().clear();
        if let Some(cache) = self.leaf.lock().as_mut() {
            cache.clear();
        }
    }

    /// Forgets every recorded page checksum (the scrub cursor resets with
    /// them; the cumulative [`IntegrityStats`] survive). The sidecar is
    /// process-volatile state: a crash loses it, so restart simulation must
    /// too — after a torn or dropped write, the device legitimately holds
    /// *older* bytes than the checksum recorded at submission, and keeping
    /// the stale entry would indict pages the WAL replay is about to make
    /// consistent anyway. Tracking restarts from scratch as recovery and new
    /// writes re-record.
    pub fn reset_integrity(&self) {
        let mut integrity = self.integrity.lock();
        integrity.checksums.clear();
        integrity.scrub_cursor = 0;
    }

    /// Resizes the buffer pool, writing back any dirty entries that no longer fit.
    /// Used by the experiments that sweep the pool size over one loaded index.
    pub fn resize_pool(&self, capacity_pages: u64) -> IoResult<()> {
        let victims = self.pool.lock().resize(capacity_pages);
        self.write_back(victims)
    }

    /// One incremental scrub step: reads back and verifies up to `max_pages`
    /// tracked pages from the scrub cursor (one psync batch), wrapping to the
    /// lowest page when the end of the tracked set is reached. A mismatch is
    /// re-read once; a *persistent* mismatch is counted as rot and — when the
    /// buffer pool still holds a copy that verifies — **healed** by rewriting
    /// that copy to the device. Unhealable rot keeps its recorded checksum, so
    /// a foreground read of the page still fails verification rather than
    /// serving bad bytes. Designed to ride a maintenance tick: each call does a
    /// bounded slice of work off the foreground path.
    pub fn scrub_step(&self, max_pages: usize) -> IoResult<ScrubReport> {
        let (batch, wrapped) = {
            let mut integrity = self.integrity.lock();
            if max_pages == 0 || integrity.checksums.is_empty() {
                return Ok(ScrubReport {
                    wrapped: true,
                    ..ScrubReport::default()
                });
            }
            let cursor = integrity.scrub_cursor;
            let mut batch: Vec<PageId> = integrity
                .checksums
                .range(cursor..)
                .take(max_pages)
                .map(|(p, _)| *p)
                .collect();
            let mut wrapped = batch.len() < max_pages;
            if wrapped {
                // Wrap to the lowest tracked pages; the two ranges are disjoint.
                let room = max_pages - batch.len();
                let wrap: Vec<PageId> = integrity
                    .checksums
                    .range(..cursor)
                    .take(room)
                    .map(|(p, _)| *p)
                    .collect();
                batch.extend(wrap);
            }
            integrity.scrub_cursor = batch.last().map_or(0, |&p| p + 1);
            // A step that lands exactly on the end of the tracked set also
            // completes the cycle.
            if integrity.checksums.range(integrity.scrub_cursor..).next().is_none() {
                wrapped = true;
            }
            (batch, wrapped)
        };
        let images = self.store.read_pages(&batch)?;
        let mut report = ScrubReport {
            scanned: batch.len(),
            wrapped,
            ..ScrubReport::default()
        };
        for (page, image) in batch.into_iter().zip(images) {
            // Judge against the checksum recorded *now* — the page may have
            // been rewritten (or freed) since the batch was selected.
            let Some(expected) = self.integrity.lock().checksums.get(&page).copied() else {
                continue;
            };
            if page_checksum(&image) == expected {
                continue;
            }
            self.integrity.lock().stats.corruption_detected += 1;
            let reread = self.store.read_page(page)?;
            if page_checksum(&reread) == expected {
                self.integrity.lock().stats.corruption_recovered += 1;
                continue;
            }
            // Persistent rot. Heal from a pooled copy when one verifies.
            self.integrity.lock().stats.scrub_corruptions += 1;
            report.corrupt += 1;
            let pooled = self.pool.lock().get(page);
            if let Some(copy) = pooled {
                if page_checksum(&copy) == expected {
                    self.store.write_page(page, &copy)?;
                    self.integrity.lock().stats.scrub_healed += 1;
                    report.healed += 1;
                }
            }
        }
        self.integrity.lock().stats.scrubbed_pages += report.scanned as u64;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio::SimPsyncIo;
    use ssd_sim::DeviceProfile;
    use std::sync::Arc;

    fn cached(policy: WritePolicy, pool_pages: u64) -> CachedStore {
        let io = Arc::new(SimPsyncIo::with_profile(DeviceProfile::F120, 256 * 1024 * 1024));
        let store = PageStore::new(io, 4096);
        CachedStore::new(store, pool_pages, policy)
    }

    #[test]
    fn read_through_and_hit() {
        let c = cached(WritePolicy::WriteThrough, 16);
        let p = c.allocate();
        c.write_page(p, &vec![7u8; 4096]).unwrap();
        let io_before = c.store().stats().page_reads;
        assert_eq!(c.read_page(p).unwrap()[0], 7);
        assert_eq!(c.store().stats().page_reads, io_before, "should be a pool hit");
        assert!(c.pool_stats().hits >= 1);
    }

    #[test]
    fn write_back_defers_io_until_eviction_or_flush() {
        let c = cached(WritePolicy::WriteBack, 2);
        let p1 = c.allocate();
        let p2 = c.allocate();
        let p3 = c.allocate();
        c.write_page(p1, &vec![1u8; 4096]).unwrap();
        c.write_page(p2, &vec![2u8; 4096]).unwrap();
        assert_eq!(c.store().stats().page_writes, 0, "write-back: nothing written yet");
        // Third write evicts the LRU dirty page → one write-back.
        c.write_page(p3, &vec![3u8; 4096]).unwrap();
        assert_eq!(c.store().stats().page_writes, 1);
        c.flush().unwrap();
        // Remaining two dirty pages written by the flush.
        assert_eq!(c.store().stats().page_writes, 3);
        // All data must be durable and correct.
        c.drop_cache();
        assert_eq!(c.read_page(p1).unwrap()[0], 1);
        assert_eq!(c.read_page(p2).unwrap()[0], 2);
        assert_eq!(c.read_page(p3).unwrap()[0], 3);
    }

    #[test]
    fn write_through_writes_immediately() {
        let c = cached(WritePolicy::WriteThrough, 4);
        let p = c.allocate();
        c.write_page(p, &vec![9u8; 4096]).unwrap();
        assert_eq!(c.store().stats().page_writes, 1);
    }

    #[test]
    fn batched_reads_fetch_only_misses() {
        let c = cached(WritePolicy::WriteThrough, 8);
        let pages: Vec<PageId> = (0..6).map(|_| c.allocate()).collect();
        for &p in &pages {
            c.write_page(p, &vec![p as u8; 4096]).unwrap();
        }
        c.drop_cache();
        // warm up half of them
        c.read_page(pages[0]).unwrap();
        c.read_page(pages[1]).unwrap();
        c.read_page(pages[2]).unwrap();
        let before = c.store().stats().page_reads;
        let all = c.read_pages(&pages).unwrap();
        for (i, data) in all.iter().enumerate() {
            assert_eq!(data[0], pages[i] as u8);
        }
        assert_eq!(
            c.store().stats().page_reads - before,
            3,
            "only the 3 cold pages hit the device"
        );
    }

    #[test]
    fn region_round_trip() {
        let c = cached(WritePolicy::WriteThrough, 16);
        let first = c.allocate_contiguous(4);
        let img: Vec<u8> = (0..4 * 4096u32).map(|i| (i % 253) as u8).collect();
        c.write_region(first, &img).unwrap();
        assert_eq!(c.read_region(first, 4).unwrap(), img);
        // Regions bypass the pool, so a second read hits the device again.
        let before = c.store().stats().page_reads;
        assert_eq!(c.read_region(first, 4).unwrap(), img);
        assert_eq!(c.store().stats().page_reads, before + 4);
    }

    #[test]
    fn region_writes_invalidate_cached_pages() {
        let c = cached(WritePolicy::WriteThrough, 16);
        let first = c.allocate_contiguous(2);
        let old = vec![1u8; 2 * 4096];
        c.write_region(first, &old).unwrap();
        // Cache the second page individually.
        assert_eq!(c.read_page(first + 1).unwrap()[0], 1);
        // Overwrite the whole region; the cached page copy must not survive.
        let new = vec![9u8; 2 * 4096];
        c.write_region(first, &new).unwrap();
        assert_eq!(c.read_page(first + 1).unwrap()[0], 9);
    }

    #[test]
    fn page_writes_are_visible_to_region_reads() {
        let c = cached(WritePolicy::WriteThrough, 16);
        let first = c.allocate_contiguous(2);
        c.write_region(first, &vec![3u8; 2 * 4096]).unwrap();
        c.write_page(first + 1, &vec![7u8; 4096]).unwrap();
        let region = c.read_region(first, 2).unwrap();
        assert_eq!(region[4096], 7, "region read must see the page write");
        assert_eq!(region[0], 3);
    }

    #[test]
    fn read_regions_batches_misses() {
        let c = cached(WritePolicy::WriteThrough, 64);
        let a = c.allocate_contiguous(2);
        let b = c.allocate_contiguous(2);
        let da = vec![1u8; 2 * 4096];
        let db = vec![2u8; 2 * 4096];
        c.write_regions(&[(a, &da), (b, &db)]).unwrap();
        c.drop_cache();
        let before = c.store().stats().read_batches;
        let out = c.read_regions(&[(a, 2), (b, 2)]).unwrap();
        assert_eq!(out[0], da);
        assert_eq!(out[1], db);
        assert_eq!(
            c.store().stats().read_batches - before,
            1,
            "both regions in one psync call"
        );
    }

    #[test]
    fn free_drops_cached_copy() {
        let c = cached(WritePolicy::WriteBack, 4);
        let p = c.allocate();
        c.write_page(p, &vec![5u8; 4096]).unwrap();
        c.free(p);
        c.flush().unwrap();
        assert_eq!(
            c.store().stats().page_writes,
            0,
            "freed dirty page must not be written back"
        );
    }

    #[test]
    fn leaf_cache_serves_repeat_point_reads_without_device_io() {
        let c = cached(WritePolicy::WriteThrough, 16);
        c.set_leaf_cache(16);
        let first = c.allocate_contiguous(4);
        let img: Vec<u8> = (0..4 * 4096u32).map(|i| (i % 251) as u8).collect();
        c.write_region(first, &img).unwrap();
        assert_eq!(c.read_region(first, 4).unwrap(), img);
        let before = c.store().stats().page_reads;
        assert_eq!(c.read_region(first, 4).unwrap(), img);
        assert_eq!(
            c.store().stats().page_reads,
            before,
            "second point read must hit the leaf cache"
        );
        assert_eq!(c.leaf_cache_stats().hits, 1);
        // Batched region reads hit too: the whole batch resolves at submission.
        let out = c.read_regions(&[(first, 4)]).unwrap();
        assert_eq!(out[0], img);
        assert_eq!(c.store().stats().page_reads, before);
    }

    #[test]
    fn scan_hinted_reads_bypass_admission_but_hit_residents() {
        let c = cached(WritePolicy::WriteThrough, 16);
        c.set_leaf_cache(16);
        let a = c.allocate_contiguous(2);
        let b = c.allocate_contiguous(2);
        c.write_region(a, &vec![1u8; 2 * 4096]).unwrap();
        c.write_region(b, &vec![2u8; 2 * 4096]).unwrap();
        // Scan miss: fetched but not admitted.
        c.read_region_hinted(a, 2, AccessHint::Scan).unwrap();
        assert_eq!(c.leaf_cache_stats().scan_bypasses, 1);
        let before = c.store().stats().page_reads;
        c.read_region_hinted(a, 2, AccessHint::Scan).unwrap();
        assert_eq!(c.store().stats().page_reads, before + 2, "scan read was not admitted");
        // Point read admits; a later scan then hits the resident copy.
        c.read_region(b, 2).unwrap();
        let before = c.store().stats().page_reads;
        c.read_region_hinted(b, 2, AccessHint::Scan).unwrap();
        assert_eq!(c.store().stats().page_reads, before, "scan hits resident entries");
    }

    #[test]
    fn leaf_cache_is_invalidated_by_every_write_path() {
        let c = cached(WritePolicy::WriteThrough, 16);
        c.set_leaf_cache(32);
        let r = c.allocate_contiguous(2);
        c.write_region(r, &vec![1u8; 2 * 4096]).unwrap();
        c.read_region(r, 2).unwrap(); // admit
                                      // A single-page write *inside* the region (bupdate's segment append).
        c.write_page(r + 1, &vec![9u8; 4096]).unwrap();
        let img = c.read_region(r, 2).unwrap();
        assert_eq!(img[4096], 9, "stale region served after page write");
        // A region overwrite.
        c.write_region(r, &vec![7u8; 2 * 4096]).unwrap();
        assert_eq!(c.read_region(r, 2).unwrap()[0], 7);
        // write_pages (the batched page path).
        c.read_region(r, 2).unwrap();
        let data = vec![5u8; 4096];
        c.write_pages(&[(r, data.as_slice())]).unwrap();
        assert_eq!(c.read_region(r, 2).unwrap()[0], 5);
        // drop_cache empties it.
        c.read_region(r, 2).unwrap();
        c.drop_cache();
        let before = c.store().stats().page_reads;
        c.read_region(r, 2).unwrap();
        assert_eq!(
            c.store().stats().page_reads,
            before + 2,
            "drop_cache must clear leaf regions"
        );
    }

    #[test]
    fn zero_sized_pool_still_works() {
        let c = cached(WritePolicy::WriteThrough, 0);
        let p = c.allocate();
        c.write_page(p, &vec![4u8; 4096]).unwrap();
        assert_eq!(c.read_page(p).unwrap()[0], 4);
        assert_eq!(c.pool_stats().hits, 0);
    }

    /// Rot the device copy of `page` behind the sidecar's back.
    fn rot(c: &CachedStore, page: PageId, byte: usize) {
        let mut img = c.store().read_page(page).unwrap();
        img[byte] ^= 0x40;
        c.store().write_page(page, &img).unwrap();
    }

    #[test]
    fn persistent_rot_surfaces_as_corruption_not_bad_data() {
        let c = cached(WritePolicy::WriteThrough, 4);
        let p = c.allocate();
        c.write_page(p, &vec![7u8; 4096]).unwrap();
        c.drop_cache();
        rot(&c, p, 100);
        let err = c.read_page(p).unwrap_err();
        match err {
            pio::IoError::Corruption { offset, len } => {
                assert_eq!(offset, p * 4096);
                assert_eq!(len, 4096);
            }
            other => panic!("expected Corruption, got {other:?}"),
        }
        let stats = c.integrity_stats();
        assert_eq!(stats.corruption_detected, 1);
        assert_eq!(stats.corruption_recovered, 0);
    }

    #[test]
    fn rewriting_a_rotted_page_clears_the_fault() {
        let c = cached(WritePolicy::WriteThrough, 4);
        let p = c.allocate();
        c.write_page(p, &vec![7u8; 4096]).unwrap();
        c.drop_cache();
        rot(&c, p, 0);
        assert!(c.read_page(p).is_err());
        c.write_page(p, &vec![8u8; 4096]).unwrap();
        c.drop_cache();
        assert_eq!(c.read_page(p).unwrap()[0], 8);
    }

    #[test]
    fn region_reads_verify_checksums_too() {
        let c = cached(WritePolicy::WriteThrough, 4);
        let first = c.allocate_contiguous(3);
        c.write_region(first, &vec![3u8; 3 * 4096]).unwrap();
        rot(&c, first + 1, 17);
        let err = c.read_region(first, 3).unwrap_err();
        match err {
            pio::IoError::Corruption { offset, .. } => {
                assert_eq!(offset, (first + 1) * 4096, "should name the rotted page")
            }
            other => panic!("expected Corruption, got {other:?}"),
        }
    }

    #[test]
    fn write_back_records_checksums_when_pages_reach_the_device() {
        let c = cached(WritePolicy::WriteBack, 4);
        let p = c.allocate();
        c.write_page(p, &vec![5u8; 4096]).unwrap();
        assert_eq!(c.tracked_pages(), 0, "dirty page not on the device yet");
        c.flush().unwrap();
        assert_eq!(c.tracked_pages(), 1);
        c.drop_cache();
        rot(&c, p, 9);
        assert!(matches!(c.read_page(p), Err(pio::IoError::Corruption { .. })));
    }

    #[test]
    fn free_drops_the_checksum_entry() {
        let c = cached(WritePolicy::WriteThrough, 4);
        let p = c.allocate();
        c.write_page(p, &vec![1u8; 4096]).unwrap();
        assert_eq!(c.tracked_pages(), 1);
        c.free(p);
        assert_eq!(c.tracked_pages(), 0);
    }

    #[test]
    fn scrub_detects_rot_and_heals_from_the_pool() {
        let c = cached(WritePolicy::WriteThrough, 8);
        let pages: Vec<PageId> = (0..4).map(|_| c.allocate()).collect();
        for &p in &pages {
            c.write_page(p, &vec![p as u8 + 1; 4096]).unwrap();
        }
        // The pool still holds clean copies of everything; rot one device copy.
        rot(&c, pages[2], 40);
        let mut scanned = 0;
        let mut healed = 0;
        loop {
            let r = c.scrub_step(2).unwrap();
            scanned += r.scanned;
            healed += r.healed;
            if r.wrapped {
                break;
            }
        }
        assert_eq!(scanned, 4, "one full cycle visits every tracked page");
        assert_eq!(healed, 1);
        let stats = c.integrity_stats();
        assert_eq!(stats.scrub_corruptions, 1);
        assert_eq!(stats.scrub_healed, 1);
        assert_eq!(stats.scrubbed_pages, 4);
        // The heal must have actually fixed the device copy.
        c.drop_cache();
        assert_eq!(c.read_page(pages[2]).unwrap()[0], pages[2] as u8 + 1);
    }

    #[test]
    fn scrub_flags_unhealable_rot_but_keeps_the_checksum() {
        let c = cached(WritePolicy::WriteThrough, 4);
        let p = c.allocate();
        c.write_page(p, &vec![6u8; 4096]).unwrap();
        c.drop_cache(); // no pooled copy → nothing to heal from
        rot(&c, p, 0);
        let r = c.scrub_step(8).unwrap();
        assert_eq!(r.corrupt, 1);
        assert_eq!(r.healed, 0);
        // A foreground read must still refuse to serve the bad bytes.
        assert!(matches!(c.read_page(p), Err(pio::IoError::Corruption { .. })));
    }

    #[test]
    fn scrub_on_an_empty_store_is_a_no_op() {
        let c = cached(WritePolicy::WriteThrough, 4);
        let r = c.scrub_step(16).unwrap();
        assert_eq!(r.scanned, 0);
        assert!(r.wrapped);
    }
}
