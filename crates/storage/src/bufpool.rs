//! An LRU buffer pool with per-entry weights.
//!
//! The pool is a pure in-memory structure: it never performs I/O itself. Eviction
//! returns the victim to the caller ([`crate::CachedStore`]) which decides whether a
//! write-back is needed. Entries carry a *weight* in pages so that a multi-page leaf
//! node of the PIO B-tree occupies as much of the pool as it really uses — this is
//! what makes the buffer-pool / OPQ trade-off of Figure 11 meaningful.

use crate::page::PageId;
use std::collections::{HashMap, VecDeque};

/// Cache policy applied by [`crate::CachedStore`] on writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Dirty pages stay in the pool and are written back on eviction or flush
    /// (no-force, like a conventional DBMS buffer manager).
    WriteBack,
    /// Every write goes straight to the device; the pool only holds clean copies.
    /// This is the PIO B-tree policy — it never keeps dirty buffers, so reads and
    /// writes are never interleaved by buffer-miss evictions (Section 4.2).
    WriteThrough,
}

/// Hit/miss/eviction counters of a buffer pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Lookups that found the page resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Evicted entries that were dirty (and therefore required a write-back).
    pub dirty_evictions: u64,
}

impl BufferPoolStats {
    /// Hit ratio in `[0, 1]`; 0 when the pool has not been used yet.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Frame {
    data: Vec<u8>,
    dirty: bool,
    weight: u64,
    stamp: u64,
}

/// An LRU cache of page (or page-region) images, bounded by a capacity expressed in
/// pages.
#[derive(Debug)]
pub struct BufferPool {
    capacity_pages: u64,
    used_pages: u64,
    frames: HashMap<PageId, Frame>,
    lru: VecDeque<(PageId, u64)>,
    next_stamp: u64,
    stats: BufferPoolStats,
}

/// An entry evicted from the pool.
#[derive(Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Key of the evicted entry (its first page id).
    pub page: PageId,
    /// The evicted image.
    pub data: Vec<u8>,
    /// Whether the image was dirty (needs a write-back).
    pub dirty: bool,
}

impl BufferPool {
    /// Creates a pool that can hold up to `capacity_pages` pages worth of entries.
    /// A capacity of zero is allowed and simply caches nothing.
    pub fn new(capacity_pages: u64) -> Self {
        Self {
            capacity_pages,
            used_pages: 0,
            frames: HashMap::new(),
            lru: VecDeque::new(),
            next_stamp: 0,
            stats: BufferPoolStats::default(),
        }
    }

    /// The configured capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Changes the capacity, evicting entries (LRU first) until the pool fits.
    /// Returns the evicted entries so the caller can write back dirty ones.
    pub fn resize(&mut self, capacity_pages: u64) -> Vec<Evicted> {
        self.capacity_pages = capacity_pages;
        let mut evicted = Vec::new();
        while self.used_pages > self.capacity_pages {
            match self.pop_lru() {
                Some(v) => evicted.push(v),
                None => break,
            }
        }
        evicted
    }

    /// Pages currently resident.
    pub fn used_pages(&self) -> u64 {
        self.used_pages
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BufferPoolStats {
        self.stats
    }

    fn touch(&mut self, page: PageId) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(f) = self.frames.get_mut(&page) {
            f.stamp = stamp;
        }
        self.lru.push_back((page, stamp));
    }

    /// Looks a page up, updating recency and hit/miss counters. Returns a clone of the
    /// cached image.
    pub fn get(&mut self, page: PageId) -> Option<Vec<u8>> {
        if self.frames.contains_key(&page) {
            self.stats.hits += 1;
            self.touch(page);
            Some(self.frames[&page].data.clone())
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Looks a page up without counting a hit or miss (used for dirty-flag queries).
    pub fn peek(&self, page: PageId) -> Option<&[u8]> {
        self.frames.get(&page).map(|f| f.data.as_slice())
    }

    /// Whether the entry is resident and dirty.
    pub fn is_dirty(&self, page: PageId) -> bool {
        self.frames.get(&page).map(|f| f.dirty).unwrap_or(false)
    }

    /// Inserts (or replaces) an entry of `weight` pages, returning every entry that
    /// had to be evicted to make room. Entries larger than the whole pool are not
    /// cached (an empty eviction list is returned and the entry is dropped).
    pub fn insert(&mut self, page: PageId, data: Vec<u8>, dirty: bool, weight: u64) -> Vec<Evicted> {
        let mut evicted = Vec::new();
        if weight > self.capacity_pages {
            // Too large to cache at all. Still surface nothing to write back: the
            // caller handles durability before inserting.
            return evicted;
        }
        if let Some(old) = self.frames.remove(&page) {
            self.used_pages -= old.weight;
            // keep dirtiness if the replacement says clean but the old copy was dirty
            // and the caller did not write it back; the caller controls this by
            // passing the right flag, so no merging is done here.
        }
        while self.used_pages + weight > self.capacity_pages {
            match self.pop_lru() {
                Some(v) => evicted.push(v),
                None => break,
            }
        }
        self.used_pages += weight;
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.frames.insert(
            page,
            Frame {
                data,
                dirty,
                weight,
                stamp,
            },
        );
        self.lru.push_back((page, stamp));
        evicted
    }

    /// Marks a resident entry dirty (no-op if absent). Returns whether the entry was
    /// resident.
    pub fn mark_dirty(&mut self, page: PageId) -> bool {
        if let Some(f) = self.frames.get_mut(&page) {
            f.dirty = true;
            true
        } else {
            false
        }
    }

    /// Removes an entry without counting an eviction (used when a page is freed).
    pub fn remove(&mut self, page: PageId) -> Option<Evicted> {
        self.frames.remove(&page).map(|f| {
            self.used_pages -= f.weight;
            Evicted {
                page,
                data: f.data,
                dirty: f.dirty,
            }
        })
    }

    /// Drains every dirty entry (leaving clean copies resident) and returns them —
    /// used by `flush`.
    pub fn take_dirty(&mut self) -> Vec<(PageId, Vec<u8>)> {
        let mut out = Vec::new();
        for (page, frame) in self.frames.iter_mut() {
            if frame.dirty {
                frame.dirty = false;
                out.push((*page, frame.data.clone()));
            }
        }
        out.sort_by_key(|(p, _)| *p);
        out
    }

    /// Removes every entry (used when the pool is resized between experiments).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.lru.clear();
        self.used_pages = 0;
    }

    fn pop_lru(&mut self) -> Option<Evicted> {
        while let Some((page, stamp)) = self.lru.pop_front() {
            let current = match self.frames.get(&page) {
                Some(f) => f.stamp,
                None => continue,
            };
            if current != stamp {
                continue; // stale queue entry
            }
            let frame = self.frames.remove(&page).expect("checked above");
            self.used_pages -= frame.weight;
            self.stats.evictions += 1;
            if frame.dirty {
                self.stats.dirty_evictions += 1;
            }
            return Some(Evicted {
                page,
                data: frame.data,
                dirty: frame.dirty,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_are_counted() {
        let mut p = BufferPool::new(4);
        assert!(p.get(1).is_none());
        p.insert(1, vec![1], false, 1);
        assert_eq!(p.get(1).unwrap(), vec![1]);
        let s = p.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = BufferPool::new(3);
        p.insert(1, vec![1], false, 1);
        p.insert(2, vec![2], false, 1);
        p.insert(3, vec![3], false, 1);
        // touch 1 so 2 becomes the LRU victim
        p.get(1);
        let ev = p.insert(4, vec![4], false, 1);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].page, 2);
        assert!(p.peek(1).is_some());
        assert!(p.peek(2).is_none());
        assert!(p.peek(3).is_some());
        assert!(p.peek(4).is_some());
    }

    #[test]
    fn dirty_evictions_are_flagged() {
        let mut p = BufferPool::new(1);
        p.insert(1, vec![1], true, 1);
        let ev = p.insert(2, vec![2], false, 1);
        assert_eq!(ev.len(), 1);
        assert!(ev[0].dirty);
        assert_eq!(p.stats().dirty_evictions, 1);
    }

    #[test]
    fn weights_count_towards_capacity() {
        let mut p = BufferPool::new(8);
        p.insert(0, vec![0; 4], false, 4);
        p.insert(10, vec![1; 4], false, 4);
        assert_eq!(p.used_pages(), 8);
        // Inserting a 4-page entry must evict one of the existing 4-page entries.
        let ev = p.insert(20, vec![2; 4], false, 4);
        assert_eq!(ev.len(), 1);
        assert_eq!(p.used_pages(), 8);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let mut p = BufferPool::new(2);
        let ev = p.insert(1, vec![0; 3], false, 3);
        assert!(ev.is_empty());
        assert!(p.peek(1).is_none());
        assert_eq!(p.used_pages(), 0);
    }

    #[test]
    fn replacement_updates_weight_accounting() {
        let mut p = BufferPool::new(4);
        p.insert(1, vec![1; 2], false, 2);
        p.insert(1, vec![2; 1], false, 1);
        assert_eq!(p.used_pages(), 1);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn mark_dirty_and_take_dirty() {
        let mut p = BufferPool::new(4);
        p.insert(1, vec![1], false, 1);
        p.insert(2, vec![2], false, 1);
        assert!(p.mark_dirty(1));
        assert!(!p.mark_dirty(99));
        assert!(p.is_dirty(1));
        assert!(!p.is_dirty(2));
        let dirty = p.take_dirty();
        assert_eq!(dirty, vec![(1, vec![1])]);
        assert!(!p.is_dirty(1), "take_dirty cleans the entry");
        assert!(p.peek(1).is_some(), "entry stays resident");
    }

    #[test]
    fn remove_and_clear() {
        let mut p = BufferPool::new(4);
        p.insert(1, vec![1], true, 1);
        let removed = p.remove(1).unwrap();
        assert!(removed.dirty);
        assert!(p.remove(1).is_none());
        p.insert(2, vec![2], false, 1);
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.used_pages(), 0);
    }

    #[test]
    fn zero_capacity_pool_caches_nothing() {
        let mut p = BufferPool::new(0);
        let ev = p.insert(1, vec![1], false, 1);
        assert!(ev.is_empty());
        assert!(p.get(1).is_none());
    }

    #[test]
    fn stale_lru_entries_are_skipped() {
        let mut p = BufferPool::new(2);
        p.insert(1, vec![1], false, 1);
        p.insert(2, vec![2], false, 1);
        // touch page 1 many times to generate stale queue entries for it
        for _ in 0..100 {
            p.get(1);
        }
        let ev = p.insert(3, vec![3], false, 1);
        // victim must be page 2 (page 1 was touched last), despite the stale entries
        assert_eq!(ev[0].page, 2);
        assert!(p.peek(1).is_some());
    }
}
