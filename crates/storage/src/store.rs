//! The page store: a flat page space over a submission/completion I/O backend.
//!
//! Every read/write path exists in two forms: a blocking one (`read_pages`,
//! `write_regions`, …) and a ticketed one (`submit_read_pages` +
//! `complete_read`, …). The blocking form is the ticketed form with an immediate
//! wait; index hot paths use the ticketed form to keep several batches in flight.

use crate::page::{page_offset, PageId};
use parking_lot::Mutex;
use pio::{IoQueue, IoResult, ReadRequest, WriteRequest};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An in-flight read batch submitted through [`PageStore::submit_read_pages`] or
/// [`PageStore::submit_read_regions`], redeemed with [`PageStore::complete_read`].
#[derive(Debug)]
#[must_use = "an in-flight read must be completed to obtain its buffers"]
pub struct ReadTicket {
    ticket: pio::Ticket,
}

/// An in-flight write batch submitted through [`PageStore::submit_write_pages`] or
/// [`PageStore::submit_write_regions`], redeemed with
/// [`PageStore::complete_write`].
#[derive(Debug)]
#[must_use = "an in-flight write must be completed to observe durability"]
pub struct WriteTicket {
    ticket: pio::Ticket,
}

/// Allocation and I/O counters of a [`PageStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Pages allocated (including contiguous runs).
    pub allocated: u64,
    /// Pages returned to the free list.
    pub freed: u64,
    /// Single-page and region read requests issued.
    pub page_reads: u64,
    /// Single-page and region write requests issued.
    pub page_writes: u64,
    /// psync read calls issued.
    pub read_batches: u64,
    /// psync write calls issued.
    pub write_batches: u64,
}

/// The reusable-page pool: a stack for O(1) pop plus a membership set so that
/// freeing an already-free page is an O(1) no-op (see [`PageStore::free`]).
#[derive(Debug, Default)]
struct FreeList {
    stack: Vec<PageId>,
    members: std::collections::HashSet<PageId>,
}

impl FreeList {
    /// Adds `page` unless it is already free; returns whether it was added.
    fn push(&mut self, page: PageId) -> bool {
        if !self.members.insert(page) {
            return false;
        }
        self.stack.push(page);
        true
    }

    fn pop(&mut self) -> Option<PageId> {
        let page = self.stack.pop()?;
        self.members.remove(&page);
        Some(page)
    }
}

/// A flat page space with allocation, single, batched (psync) and multi-page region
/// I/O, generic over any [`IoQueue`] backend.
///
/// Cloning a `PageStore` is cheap and yields a handle to the same underlying space
/// (allocation state and statistics are shared).
#[derive(Clone)]
pub struct PageStore {
    io: Arc<dyn IoQueue>,
    page_size: usize,
    next_page: Arc<AtomicU64>,
    free_list: Arc<Mutex<FreeList>>,
    stats: Arc<Mutex<StoreStats>>,
}

impl std::fmt::Debug for PageStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageStore")
            .field("page_size", &self.page_size)
            .field("next_page", &self.next_page.load(Ordering::Relaxed))
            .finish()
    }
}

impl PageStore {
    /// Creates a store with `page_size`-byte pages over `io`.
    pub fn new(io: Arc<dyn IoQueue>, page_size: usize) -> Self {
        assert!(page_size >= 64, "page size must hold at least a node header");
        Self {
            io,
            page_size,
            next_page: Arc::new(AtomicU64::new(0)),
            free_list: Arc::new(Mutex::new(FreeList::default())),
            stats: Arc::new(Mutex::new(StoreStats::default())),
        }
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The backend this store performs I/O through.
    pub fn io(&self) -> &Arc<dyn IoQueue> {
        &self.io
    }

    /// Total simulated / wall-clock I/O time consumed through this store's backend, µs.
    pub fn io_elapsed_us(&self) -> f64 {
        self.io.io_stats().elapsed_us
    }

    /// The backend's advisory queue depth in requests (see
    /// [`IoQueue::queue_depth_hint`]) — what pipelined callers divide by their
    /// per-batch request count to size their ticket lookahead.
    pub fn queue_depth_hint(&self) -> Option<usize> {
        self.io.queue_depth_hint()
    }

    /// Snapshot of the allocation / I/O counters.
    pub fn stats(&self) -> StoreStats {
        *self.stats.lock()
    }

    /// Number of pages handed out so far (high-water mark, ignoring frees).
    pub fn high_water_pages(&self) -> u64 {
        self.next_page.load(Ordering::Relaxed)
    }

    /// Raises the allocation frontier to at least `pages` (no-op when already
    /// past it). Used when reopening a store over existing data: pages below the
    /// restored high-water mark are in use and must never be handed out again —
    /// neither by the bump allocator nor, transitively, by a [`PageStore::free`]
    /// of a page the allocator has not yet reached.
    pub fn ensure_high_water(&self, pages: u64) {
        self.next_page.fetch_max(pages, Ordering::Relaxed);
    }

    /// Allocates one page, reusing a freed page when available.
    pub fn allocate(&self) -> PageId {
        self.stats.lock().allocated += 1;
        if let Some(p) = self.free_list.lock().pop() {
            return p;
        }
        self.next_page.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns a page to the free list. Freed pages are reused by later
    /// single-page allocations. Freeing an already-free page is a no-op: crash
    /// recovery may re-free pages that an in-process flush rollback reclaimed
    /// just before the crash, and a double entry would let [`PageStore::allocate`]
    /// hand the page out twice.
    pub fn free(&self, page: PageId) {
        if self.free_list.lock().push(page) {
            self.stats.lock().freed += 1;
        }
    }

    /// Allocates `n` physically consecutive pages and returns the first id. Used for
    /// multi-page leaf nodes, which must be contiguous so that one large read covers
    /// the whole node.
    pub fn allocate_contiguous(&self, n: u64) -> PageId {
        assert!(n > 0);
        self.stats.lock().allocated += n;
        self.next_page.fetch_add(n, Ordering::Relaxed)
    }

    /// Reads one page.
    pub fn read_page(&self, page: PageId) -> IoResult<Vec<u8>> {
        let mut v = self.read_pages(std::slice::from_ref(&page))?;
        Ok(v.pop().expect("one result per request"))
    }

    /// Reads many pages with a single psync call; results are in the order of `pages`.
    pub fn read_pages(&self, pages: &[PageId]) -> IoResult<Vec<Vec<u8>>> {
        self.complete_read(self.submit_read_pages(pages)?)
    }

    /// Writes one page. `data` must be exactly one page long.
    pub fn write_page(&self, page: PageId, data: &[u8]) -> IoResult<()> {
        self.write_pages(&[(page, data)])
    }

    /// Writes many pages with a single psync call.
    pub fn write_pages(&self, pages: &[(PageId, &[u8])]) -> IoResult<()> {
        self.complete_write(self.submit_write_pages(pages)?)
    }

    /// Reads `n_pages` consecutive pages starting at `first` with a single large
    /// request (package-level parallelism: one I/O of `n_pages × page_size` bytes).
    pub fn read_region(&self, first: PageId, n_pages: u64) -> IoResult<Vec<u8>> {
        assert!(n_pages > 0);
        let mut bufs = self.read_regions(&[(first, n_pages)])?;
        Ok(bufs.pop().expect("one result"))
    }

    /// Writes a contiguous region of pages with a single large request. `data` must be
    /// a whole number of pages.
    pub fn write_region(&self, first: PageId, data: &[u8]) -> IoResult<()> {
        self.write_regions(&[(first, data)])
    }

    /// Reads several multi-page regions with one psync call (used by the PIO B-tree to
    /// fetch many enlarged leaf nodes at once). Each entry is `(first_page, n_pages)`.
    pub fn read_regions(&self, regions: &[(PageId, u64)]) -> IoResult<Vec<Vec<u8>>> {
        self.complete_read(self.submit_read_regions(regions)?)
    }

    /// Writes several multi-page regions with one psync call. Each entry is
    /// `(first_page, data)` where `data` is a whole number of pages.
    pub fn write_regions(&self, regions: &[(PageId, &[u8])]) -> IoResult<()> {
        self.complete_write(self.submit_write_regions(regions)?)
    }

    // ------------------------------------------------- submission/completion tier --

    /// Submits a batched page read without waiting for it. The batch stays in
    /// flight (overlapping whatever else is outstanding on the backend) until
    /// [`PageStore::complete_read`] is called.
    pub fn submit_read_pages(&self, pages: &[PageId]) -> IoResult<ReadTicket> {
        let reqs: Vec<ReadRequest> = pages
            .iter()
            .map(|&p| ReadRequest::new(page_offset(p, self.page_size), self.page_size))
            .collect();
        let ticket = self.io.submit_read(&reqs)?;
        if !pages.is_empty() {
            let mut s = self.stats.lock();
            s.page_reads += pages.len() as u64;
            s.read_batches += 1;
        }
        Ok(ReadTicket { ticket })
    }

    /// Submits a multi-region read without waiting for it.
    pub fn submit_read_regions(&self, regions: &[(PageId, u64)]) -> IoResult<ReadTicket> {
        let reqs: Vec<ReadRequest> = regions
            .iter()
            .map(|&(p, n)| ReadRequest::new(page_offset(p, self.page_size), self.page_size * n as usize))
            .collect();
        let ticket = self.io.submit_read(&reqs)?;
        if !regions.is_empty() {
            let mut s = self.stats.lock();
            s.page_reads += regions.iter().map(|&(_, n)| n).sum::<u64>();
            s.read_batches += 1;
        }
        Ok(ReadTicket { ticket })
    }

    /// Waits for an in-flight read and returns one buffer per submitted page or
    /// region, in submission order.
    pub fn complete_read(&self, ticket: ReadTicket) -> IoResult<Vec<Vec<u8>>> {
        Ok(self.io.wait(ticket.ticket)?.buffers)
    }

    /// Submits a batched page write without waiting for it. The page images are
    /// captured at submission; durability is observed by
    /// [`PageStore::complete_write`].
    pub fn submit_write_pages(&self, pages: &[(PageId, &[u8])]) -> IoResult<WriteTicket> {
        for (_, data) in pages {
            assert_eq!(data.len(), self.page_size, "page image must match the page size");
        }
        let reqs: Vec<WriteRequest> = pages
            .iter()
            .map(|(p, data)| WriteRequest::new(page_offset(*p, self.page_size), data))
            .collect();
        let ticket = self.io.submit_write(&reqs)?;
        if !pages.is_empty() {
            let mut s = self.stats.lock();
            s.page_writes += pages.len() as u64;
            s.write_batches += 1;
        }
        Ok(WriteTicket { ticket })
    }

    /// Submits a multi-region write without waiting for it.
    pub fn submit_write_regions(&self, regions: &[(PageId, &[u8])]) -> IoResult<WriteTicket> {
        for (_, data) in regions {
            assert!(!data.is_empty() && data.len() % self.page_size == 0);
        }
        let reqs: Vec<WriteRequest> = regions
            .iter()
            .map(|(p, data)| WriteRequest::new(page_offset(*p, self.page_size), data))
            .collect();
        let ticket = self.io.submit_write(&reqs)?;
        if !regions.is_empty() {
            let mut s = self.stats.lock();
            s.page_writes += regions
                .iter()
                .map(|(_, d)| (d.len() / self.page_size) as u64)
                .sum::<u64>();
            s.write_batches += 1;
        }
        Ok(WriteTicket { ticket })
    }

    /// Waits for an in-flight write to become durable.
    pub fn complete_write(&self, ticket: WriteTicket) -> IoResult<()> {
        self.io.wait(ticket.ticket)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio::SimPsyncIo;
    use ssd_sim::DeviceProfile;

    fn store(page_size: usize) -> PageStore {
        let io = Arc::new(SimPsyncIo::with_profile(DeviceProfile::F120, 256 * 1024 * 1024));
        PageStore::new(io, page_size)
    }

    #[test]
    fn allocation_is_monotonic_and_reuses_freed_pages() {
        let s = store(4096);
        let a = s.allocate();
        let b = s.allocate();
        assert_ne!(a, b);
        s.free(a);
        let c = s.allocate();
        assert_eq!(c, a, "freed page should be reused");
        assert_eq!(s.stats().allocated, 3);
        assert_eq!(s.stats().freed, 1);
    }

    #[test]
    fn contiguous_allocation_is_really_contiguous() {
        let s = store(4096);
        let first = s.allocate_contiguous(4);
        let next = s.allocate();
        assert_eq!(next, first + 4);
    }

    #[test]
    fn single_page_round_trip() {
        let s = store(4096);
        let p = s.allocate();
        let mut img = vec![0u8; 4096];
        img[..4].copy_from_slice(b"page");
        s.write_page(p, &img).unwrap();
        assert_eq!(s.read_page(p).unwrap(), img);
    }

    #[test]
    fn batched_round_trip_preserves_order() {
        let s = store(2048);
        let pages: Vec<PageId> = (0..16).map(|_| s.allocate()).collect();
        let images: Vec<Vec<u8>> = pages.iter().map(|&p| vec![p as u8; 2048]).collect();
        let writes: Vec<(PageId, &[u8])> = pages.iter().zip(&images).map(|(&p, d)| (p, d.as_slice())).collect();
        s.write_pages(&writes).unwrap();
        let read_back = s.read_pages(&pages).unwrap();
        assert_eq!(read_back, images);
        assert_eq!(s.stats().write_batches, 1);
        assert_eq!(s.stats().read_batches, 1);
        assert_eq!(s.stats().page_writes, 16);
    }

    #[test]
    fn region_round_trip() {
        let s = store(2048);
        let first = s.allocate_contiguous(4);
        let data: Vec<u8> = (0..4 * 2048u32).map(|i| (i % 255) as u8).collect();
        s.write_region(first, &data).unwrap();
        assert_eq!(s.read_region(first, 4).unwrap(), data);
    }

    #[test]
    fn multiple_regions_in_one_call() {
        let s = store(2048);
        let a = s.allocate_contiguous(2);
        let b = s.allocate_contiguous(3);
        let da = vec![1u8; 2 * 2048];
        let db = vec![2u8; 3 * 2048];
        s.write_regions(&[(a, &da), (b, &db)]).unwrap();
        let out = s.read_regions(&[(a, 2), (b, 3)]).unwrap();
        assert_eq!(out[0], da);
        assert_eq!(out[1], db);
    }

    #[test]
    #[should_panic(expected = "page image must match")]
    fn wrong_sized_page_is_rejected() {
        let s = store(4096);
        let p = s.allocate();
        let _ = s.write_page(p, &[0u8; 100]);
    }

    #[test]
    fn empty_batches_are_noops() {
        let s = store(4096);
        assert!(s.read_pages(&[]).unwrap().is_empty());
        s.write_pages(&[]).unwrap();
        assert_eq!(s.stats().read_batches, 0);
        assert_eq!(s.stats().write_batches, 0);
    }

    #[test]
    fn io_time_accumulates() {
        let s = store(4096);
        let p = s.allocate();
        assert_eq!(s.io_elapsed_us(), 0.0);
        s.write_page(p, &vec![0u8; 4096]).unwrap();
        assert!(s.io_elapsed_us() > 0.0);
    }

    #[test]
    fn clones_share_state() {
        let s = store(4096);
        let s2 = s.clone();
        let p = s.allocate();
        assert_ne!(s2.allocate(), p);
        assert_eq!(s.stats().allocated, 2);
    }
}
