//! # storage — page store, buffer pool and write-ahead log
//!
//! The indexes in this repository (the baseline B+-tree, the B-link tree, BFTL, the
//! FD-tree and the PIO B-tree itself) all sit on the same storage substrate:
//!
//! * [`PageStore`] — a flat page space over a [`pio::IoQueue`] backend, with page
//!   allocation, single-page and batched (psync) reads and writes, multi-page
//!   *region* operations used by the PIO B-tree's enlarged leaf nodes, and a
//!   ticketed submission/completion tier (`submit_*` / `complete_*`) that lets
//!   index hot paths keep several batches in flight.
//! * [`BufferPool`] — an LRU page cache with pin counts, dirty tracking and both
//!   write-back and write-through policies; the paper's experiments sweep its size
//!   (Figure 9) and trade it off against the operation queue (Figure 11).
//! * [`CachedStore`] — the composition of the two that index code talks to.
//! * [`LeafCache`] — an optional scan-resistant (segmented-LRU) cache for the
//!   multi-page leaf regions that bypass the buffer pool; region reads carry an
//!   [`AccessHint`] so `range_search` streams cannot evict the point-lookup
//!   working set.
//! * [`Wal`] — an append-only write-ahead log used by the PIO B-tree's crash
//!   recovery (Section 3.4).
//!
//! Everything is expressed in terms of logical [`PageId`]s; the mapping to byte
//! offsets is `page_id × page_size`, so a `PageStore` corresponds to one index file
//! in the paper's setup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bufpool;
pub mod cached;
pub mod leaf_cache;
pub mod page;
pub mod store;
pub mod wal;

pub use bufpool::{BufferPool, BufferPoolStats, WritePolicy};
pub use cached::{CachedReadTicket, CachedStore, IntegrityStats, RegionReadTicket, RegionWriteTicket, ScrubReport};
pub use leaf_cache::{AccessHint, LeafCache, LeafCacheStats};
pub use page::{PageId, INVALID_PAGE};
pub use store::{PageStore, ReadTicket, StoreStats, WriteTicket};
pub use wal::{Lsn, RescanReport, Wal, WalRecord, WalScan};
