//! A minimal append-only write-ahead log.
//!
//! Section 3.4 of the paper makes the PIO B-tree recoverable by writing **logical
//! redo logs** for every OPQ append, **flush event logs** bracketing every OPQ flush
//! and **flush undo logs** for every node updated by a flush. This module provides
//! the log device those records are written to: an append-only sequence of
//! length-prefixed records identified by their [`Lsn`] (the byte offset of the
//! record), buffered in memory and forced to the device in whole pages by
//! [`Wal::force`] — the "write ahead" step that must complete before an OPQ flush may
//! proceed.
//!
//! The log occupies its own region of a [`pio::ParallelIo`] backend (its own file in
//! the paper's terms), so log writes are sequential and never interleave with index
//! node I/O inside a single psync call.

use parking_lot::Mutex;
use pio::{IoResult, ParallelIo, ReadRequest, WriteRequest};
use std::sync::Arc;

/// Log sequence number: the byte offset of a record within the log.
pub type Lsn = u64;

/// A record read back from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's LSN.
    pub lsn: Lsn,
    /// The record payload.
    pub payload: Vec<u8>,
}

#[derive(Debug, Default)]
struct WalInner {
    /// Bytes appended but not yet forced.
    pending: Vec<(Lsn, Vec<u8>)>,
    /// Next LSN to hand out.
    next_lsn: Lsn,
    /// LSN up to which everything is durable.
    durable_lsn: Lsn,
}

/// An append-only, force-on-demand log over a psync I/O backend.
pub struct Wal {
    io: Arc<dyn ParallelIo>,
    /// Byte offset of the start of the log region on the backend.
    base_offset: u64,
    page_size: usize,
    inner: Mutex<WalInner>,
}

const LEN_PREFIX: usize = 4;

impl Wal {
    /// Creates a log whose records are written starting at `base_offset` on `io`,
    /// forced in units of `page_size` bytes.
    pub fn new(io: Arc<dyn ParallelIo>, base_offset: u64, page_size: usize) -> Self {
        Self {
            io,
            base_offset,
            page_size,
            inner: Mutex::new(WalInner::default()),
        }
    }

    /// Appends a record and returns its LSN. The record is **not** durable until
    /// [`Wal::force`] returns.
    pub fn append(&self, payload: &[u8]) -> Lsn {
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        inner.next_lsn += (LEN_PREFIX + payload.len()) as u64;
        inner.pending.push((lsn, payload.to_vec()));
        lsn
    }

    /// The LSN that the *next* append will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.inner.lock().next_lsn
    }

    /// The LSN up to which the log is durable.
    pub fn durable_lsn(&self) -> Lsn {
        self.inner.lock().durable_lsn
    }

    /// Number of appended-but-not-forced records.
    pub fn pending_records(&self) -> usize {
        self.inner.lock().pending.len()
    }

    /// Forces every pending record to the device (WAL rule: callers must invoke this
    /// before the action the records describe is applied to the index).
    pub fn force(&self) -> IoResult<()> {
        let pending: Vec<(Lsn, Vec<u8>)> = {
            let mut inner = self.inner.lock();
            std::mem::take(&mut inner.pending)
        };
        if pending.is_empty() {
            return Ok(());
        }
        // Serialise the pending records into their byte image.
        let first_lsn = pending[0].0;
        let mut image = Vec::new();
        for (_, payload) in &pending {
            image.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            image.extend_from_slice(payload);
        }
        // Write whole pages covering [first_lsn, first_lsn + image.len()), sequentially.
        let start_page = first_lsn / self.page_size as u64;
        let end_byte = first_lsn + image.len() as u64;
        let end_page = end_byte.div_ceil(self.page_size as u64);
        // Build the page images. Records may start mid-page; bytes before the first
        // record in the first page are left as zeroes (they were written by the
        // previous force and are re-read below to preserve them).
        let mut region = vec![0u8; ((end_page - start_page) * self.page_size as u64) as usize];
        let page_base = start_page * self.page_size as u64;
        if first_lsn > page_base {
            // Preserve the earlier bytes of the first page.
            let existing = self
                .io
                .read_at(self.base_offset + page_base, (first_lsn - page_base) as usize)?;
            region[..existing.len()].copy_from_slice(&existing);
        }
        let off = (first_lsn - page_base) as usize;
        region[off..off + image.len()].copy_from_slice(&image);

        let reqs: Vec<WriteRequest> = region
            .chunks(self.page_size)
            .enumerate()
            .map(|(i, chunk)| WriteRequest::new(self.base_offset + page_base + (i * self.page_size) as u64, chunk))
            .collect();
        self.io.psync_write(&reqs)?;

        let mut inner = self.inner.lock();
        inner.durable_lsn = inner.durable_lsn.max(end_byte);
        Ok(())
    }

    /// Reads every durable record back from the device, in LSN order. Used by the
    /// recovery procedure's analysis pass.
    pub fn read_all(&self) -> IoResult<Vec<WalRecord>> {
        let durable = self.durable_lsn();
        if durable == 0 {
            return Ok(Vec::new());
        }
        let raw = {
            // Read the durable prefix in page-sized psync batches.
            let n_pages = durable.div_ceil(self.page_size as u64);
            let reqs: Vec<ReadRequest> = (0..n_pages)
                .map(|p| ReadRequest::new(self.base_offset + p * self.page_size as u64, self.page_size))
                .collect();
            let (bufs, _) = self.io.psync_read(&reqs)?;
            let mut all = Vec::with_capacity((n_pages as usize) * self.page_size);
            for b in bufs {
                all.extend_from_slice(&b);
            }
            all.truncate(durable as usize);
            all
        };
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos + LEN_PREFIX <= raw.len() {
            let len = u32::from_le_bytes(raw[pos..pos + LEN_PREFIX].try_into().expect("4 bytes")) as usize;
            if len == 0 || pos + LEN_PREFIX + len > raw.len() {
                break;
            }
            records.push(WalRecord {
                lsn: pos as u64,
                payload: raw[pos + LEN_PREFIX..pos + LEN_PREFIX + len].to_vec(),
            });
            pos += LEN_PREFIX + len;
        }
        Ok(records)
    }

    /// Discards the in-memory notion of the log (used by tests that simulate a crash:
    /// pending, un-forced records are lost; durable ones survive on the device).
    pub fn simulate_crash(&self) -> Lsn {
        let mut inner = self.inner.lock();
        inner.pending.clear();
        inner.next_lsn = inner.durable_lsn;
        inner.durable_lsn
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Wal")
            .field("base_offset", &self.base_offset)
            .field("next_lsn", &inner.next_lsn)
            .field("durable_lsn", &inner.durable_lsn)
            .field("pending", &inner.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio::SimPsyncIo;
    use ssd_sim::DeviceProfile;

    fn wal() -> Wal {
        let io = Arc::new(SimPsyncIo::with_profile(DeviceProfile::F120, 64 * 1024 * 1024));
        Wal::new(io, 0, 4096)
    }

    #[test]
    fn append_assigns_increasing_lsns() {
        let w = wal();
        let a = w.append(b"first");
        let b = w.append(b"second");
        assert!(b > a);
        assert_eq!(w.pending_records(), 2);
        assert_eq!(w.durable_lsn(), 0);
    }

    #[test]
    fn force_then_read_all_round_trips() {
        let w = wal();
        let payloads: Vec<Vec<u8>> = (0..100u32).map(|i| format!("record-{i}").into_bytes()).collect();
        for p in &payloads {
            w.append(p);
        }
        w.force().unwrap();
        let records = w.read_all().unwrap();
        assert_eq!(records.len(), 100);
        for (rec, expect) in records.iter().zip(&payloads) {
            assert_eq!(&rec.payload, expect);
        }
        // LSNs must be strictly increasing.
        assert!(records.windows(2).all(|w| w[0].lsn < w[1].lsn));
    }

    #[test]
    fn multiple_forces_accumulate() {
        let w = wal();
        w.append(b"aaaa");
        w.force().unwrap();
        w.append(b"bbbb");
        w.append(b"cccc");
        w.force().unwrap();
        let recs = w.read_all().unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].payload, b"aaaa");
        assert_eq!(recs[2].payload, b"cccc");
    }

    #[test]
    fn unforced_records_are_lost_on_crash() {
        let w = wal();
        w.append(b"durable");
        w.force().unwrap();
        w.append(b"volatile");
        w.simulate_crash();
        let recs = w.read_all().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].payload, b"durable");
        // New appends continue from the durable LSN.
        let lsn = w.append(b"after");
        assert_eq!(lsn, w.durable_lsn());
    }

    #[test]
    fn force_with_nothing_pending_is_a_noop() {
        let w = wal();
        w.force().unwrap();
        assert_eq!(w.durable_lsn(), 0);
        assert!(w.read_all().unwrap().is_empty());
    }

    #[test]
    fn large_records_spanning_pages() {
        let w = wal();
        let big = vec![0xCD; 10_000];
        w.append(&big);
        w.append(b"tail");
        w.force().unwrap();
        let recs = w.read_all().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].payload, big);
        assert_eq!(recs[1].payload, b"tail");
    }
}
