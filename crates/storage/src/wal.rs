//! A minimal append-only write-ahead log.
//!
//! Section 3.4 of the paper makes the PIO B-tree recoverable by writing **logical
//! redo logs** for every OPQ append, **flush event logs** bracketing every OPQ flush
//! and **flush undo logs** for every node updated by a flush. This module provides
//! the log device those records are written to: an append-only sequence of
//! header-prefixed records identified by their [`Lsn`] (the byte offset of the
//! record), buffered in memory and forced to the device in whole pages by
//! [`Wal::force`] — the "write ahead" step that must complete before an OPQ flush may
//! proceed.
//!
//! Every record carries a length **and a checksum of its payload**, so a force that
//! is torn by a crash (only a prefix of its pages reached the device) is detected
//! at read time: scanning stops at the first record whose bytes are incomplete or
//! whose checksum does not match, and the scan reports the tail as torn instead of
//! silently yielding garbage. After a crash, [`Wal::rescan`] re-derives the durable
//! LSN from the device itself, recovering any records that a torn force *did*
//! complete — a real restart has no in-memory `durable_lsn` to trust.
//!
//! The log occupies its own region of a [`pio::ParallelIo`] backend (its own file in
//! the paper's terms), so log writes are sequential and never interleave with index
//! node I/O inside a single psync call.
//!
//! ## Truncation and the log lifecycle
//!
//! Without truncation the log grows for the lifetime of the store and restart
//! cost grows with it. [`Wal::truncate_to`] drops every record below a
//! checkpoint-anchored floor: the floor (and the mapping from LSNs to region
//! bytes after a physical compaction) is persisted in **two alternating header
//! slot pages** at the region start, each versioned and checksummed. A
//! truncation writes the slot the previous one did *not* use, so a crash that
//! tears the write leaves the other slot valid — recovery always lands on
//! either the old head or the new head, never a torn hybrid. The first two
//! pages of the region are reserved for these slots; record data begins at the
//! third page, and LSNs remain stable logical offsets for the log's whole
//! lifetime (truncation never renumbers surviving records).
//!
//! [`Wal::recover_scan`] reads the newest valid slot first and seeks straight
//! to the floor instead of scanning from byte 0 — the bounded-recovery seek:
//! replay work is proportional to the records written since the last
//! checkpoint, never to the store's age.

use parking_lot::Mutex;
use pio::{IoResult, ParallelIo, ReadRequest, WriteRequest};
use std::sync::Arc;

/// Log sequence number: the byte offset of a record within the log.
pub type Lsn = u64;

/// A record read back from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's LSN.
    pub lsn: Lsn,
    /// The record payload.
    pub payload: Vec<u8>,
}

/// The records of a log scan plus what the scan found at the end of the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Every intact record, in LSN order.
    pub records: Vec<WalRecord>,
    /// `true` when the scan stopped at a torn or corrupt record (a crash
    /// interrupted the force that was writing it) rather than at clean,
    /// never-written space.
    pub torn_tail: bool,
}

/// Outcome of a [`Wal::rescan`] after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RescanReport {
    /// The durable LSN derived from the device.
    pub durable_lsn: Lsn,
    /// Bytes of records beyond the in-memory durable LSN that a torn force had
    /// completed and the rescan salvaged.
    pub salvaged_bytes: u64,
    /// Whether the log ends in a torn record.
    pub torn_tail: bool,
}

#[derive(Debug, Default)]
struct WalInner {
    /// Bytes appended but not yet forced.
    pending: Vec<(Lsn, Vec<u8>)>,
    /// Next LSN to hand out.
    next_lsn: Lsn,
    /// LSN up to which everything is durable.
    durable_lsn: Lsn,
    /// Truncation floor: every record below this LSN has been dropped.
    trunc_lsn: Lsn,
    /// Page-aligned LSN mapped to the first data page of the region. Physical
    /// compaction advances it so the surviving tail slides back to the region
    /// start; LSNs themselves never change.
    phys_start: u64,
    /// Lifetime bytes of records dropped by truncation (persisted in the
    /// truncation header, so it survives restarts).
    truncated: u64,
    /// Version of the newest durable truncation-header slot (0 = none yet).
    header_version: u64,
}

/// An append-only, force-on-demand log over a psync I/O backend.
pub struct Wal {
    io: Arc<dyn ParallelIo>,
    /// Byte offset of the start of the log region on the backend.
    base_offset: u64,
    page_size: usize,
    inner: Mutex<WalInner>,
    /// Serialises concurrent [`Wal::force`] calls end to end: two in-flight
    /// forces would both rebuild the page containing their shared boundary
    /// record — each zero-filling the part the other owns — so whichever write
    /// lands second would erase the other's records.
    force_lock: Mutex<()>,
}

/// Record header: 4-byte little-endian payload length + 4-byte payload checksum.
const HEADER: usize = 8;

/// Pages reserved at the region start for the two truncation-header slots.
const HEADER_PAGES: u64 = 2;

/// Magic prefix of a truncation-header slot.
const HEADER_MAGIC: &[u8; 8] = b"PIOWALT1";

/// Encoded bytes of one truncation-header slot: magic + version + trunc_lsn +
/// phys_start + truncated total + checksum of everything before it.
const SLOT_LEN: usize = 8 + 8 + 8 + 8 + 8 + 4;

/// The durable truncation state of a log, as stored in a header slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct TruncHeader {
    version: u64,
    trunc_lsn: Lsn,
    phys_start: u64,
    truncated: u64,
}

fn encode_slot(h: &TruncHeader) -> [u8; SLOT_LEN] {
    let mut out = [0u8; SLOT_LEN];
    out[..8].copy_from_slice(HEADER_MAGIC);
    out[8..16].copy_from_slice(&h.version.to_le_bytes());
    out[16..24].copy_from_slice(&h.trunc_lsn.to_le_bytes());
    out[24..32].copy_from_slice(&h.phys_start.to_le_bytes());
    out[32..40].copy_from_slice(&h.truncated.to_le_bytes());
    let sum = checksum(&out[..SLOT_LEN - 4]);
    out[SLOT_LEN - 4..].copy_from_slice(&sum.to_le_bytes());
    out
}

/// Decodes a header slot; `None` for never-written space and torn writes alike
/// (both fail the magic or checksum test).
fn decode_slot(raw: &[u8]) -> Option<TruncHeader> {
    if raw.len() < SLOT_LEN || &raw[..8] != HEADER_MAGIC {
        return None;
    }
    let stored = u32::from_le_bytes(raw[SLOT_LEN - 4..SLOT_LEN].try_into().expect("4 bytes"));
    if checksum(&raw[..SLOT_LEN - 4]) != stored {
        return None;
    }
    Some(TruncHeader {
        version: u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes")),
        trunc_lsn: u64::from_le_bytes(raw[16..24].try_into().expect("8 bytes")),
        phys_start: u64::from_le_bytes(raw[24..32].try_into().expect("8 bytes")),
        truncated: u64::from_le_bytes(raw[32..40].try_into().expect("8 bytes")),
    })
}

/// Upper bound on a record payload (enforced at append): a declared length
/// beyond this is garbage from a torn header, not a record, so scans stop
/// instead of chasing it across the device.
const MAX_RECORD: usize = 1 << 20;

/// FNV-1a over the payload: cheap, and more than enough to tell a half-written
/// record from an intact one.
fn checksum(payload: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in payload {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Parses the records contained in `raw` (whose first byte is LSN `base_lsn`).
/// Stops at the first zero length (clean, never-written space) or at a record
/// whose bytes are incomplete or whose checksum mismatches (torn tail).
fn parse_records(raw: &[u8], base_lsn: Lsn) -> WalScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut torn_tail = false;
    while pos + HEADER <= raw.len() {
        let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if len == 0 {
            break;
        }
        if len > MAX_RECORD {
            // No legal record is this large (append enforces MAX_RECORD): the
            // length field itself is torn garbage.
            torn_tail = true;
            break;
        }
        let stored_sum = u32::from_le_bytes(raw[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if pos + HEADER + len > raw.len() {
            torn_tail = true;
            break;
        }
        let payload = &raw[pos + HEADER..pos + HEADER + len];
        if checksum(payload) != stored_sum {
            torn_tail = true;
            break;
        }
        records.push(WalRecord {
            lsn: base_lsn + pos as u64,
            payload: payload.to_vec(),
        });
        pos += HEADER + len;
    }
    WalScan { records, torn_tail }
}

impl Wal {
    /// Creates a log whose records are written starting at `base_offset` on `io`,
    /// forced in units of `page_size` bytes.
    pub fn new(io: Arc<dyn ParallelIo>, base_offset: u64, page_size: usize) -> Self {
        Self {
            io,
            base_offset,
            page_size,
            inner: Mutex::new(WalInner::default()),
            force_lock: Mutex::new(()),
        }
    }

    /// The backend the log appends to — read-only access for observability
    /// (e.g. engine stats folding the log queue's retry counters into its
    /// per-shard rollup).
    pub fn io(&self) -> &Arc<dyn ParallelIo> {
        &self.io
    }

    /// Physical byte offset where record data begins (past the header slots).
    fn data_base(&self) -> u64 {
        self.base_offset + HEADER_PAGES * self.page_size as u64
    }

    /// Physical offset of the byte at LSN `lsn` under the mapping `phys_start`.
    fn phys(&self, lsn: u64, phys_start: u64) -> u64 {
        debug_assert!(lsn >= phys_start, "LSN {lsn} below the mapped region ({phys_start})");
        self.data_base() + (lsn - phys_start)
    }

    /// Appends a record and returns its LSN. The record is **not** durable until
    /// [`Wal::force`] returns. Empty payloads are rejected (a zero length is how
    /// the scanner recognises never-written space), as are payloads beyond the
    /// scanner's sanity bound.
    pub fn append(&self, payload: &[u8]) -> Lsn {
        assert!(!payload.is_empty(), "WAL records must be non-empty");
        assert!(
            payload.len() <= MAX_RECORD,
            "WAL records are bounded at {MAX_RECORD} bytes"
        );
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        inner.next_lsn += (HEADER + payload.len()) as u64;
        inner.pending.push((lsn, payload.to_vec()));
        lsn
    }

    /// The LSN that the *next* append will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.inner.lock().next_lsn
    }

    /// The LSN up to which the log is durable.
    pub fn durable_lsn(&self) -> Lsn {
        self.inner.lock().durable_lsn
    }

    /// Number of appended-but-not-forced records.
    pub fn pending_records(&self) -> usize {
        self.inner.lock().pending.len()
    }

    /// Forces every pending record to the device (WAL rule: callers must invoke this
    /// before the action the records describe is applied to the index). Concurrent
    /// forces are serialised; records appended while a force is in flight are
    /// picked up by the next one.
    pub fn force(&self) -> IoResult<()> {
        let _serialised = self.force_lock.lock();
        // The mapping is stable for the whole force: truncation also holds the
        // force lock, so `phys_start` cannot move under the writes below.
        let (pending, phys_start): (Vec<(Lsn, Vec<u8>)>, u64) = {
            let mut inner = self.inner.lock();
            (std::mem::take(&mut inner.pending), inner.phys_start)
        };
        if pending.is_empty() {
            return Ok(());
        }
        // Serialise the pending records into their byte image.
        let first_lsn = pending[0].0;
        let mut image = Vec::new();
        for (_, payload) in &pending {
            image.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            image.extend_from_slice(&checksum(payload).to_le_bytes());
            image.extend_from_slice(payload);
        }
        // Write whole pages covering [first_lsn, first_lsn + image.len()), sequentially.
        let start_page = first_lsn / self.page_size as u64;
        let end_byte = first_lsn + image.len() as u64;
        let end_page = end_byte.div_ceil(self.page_size as u64);
        // Build the page images. Records may start mid-page; bytes before the first
        // record in the first page are left as zeroes (they were written by the
        // previous force and are re-read below to preserve them).
        let mut region = vec![0u8; ((end_page - start_page) * self.page_size as u64) as usize];
        let page_base = start_page * self.page_size as u64;
        if first_lsn > page_base {
            // Preserve the earlier bytes of the first page.
            let existing = self
                .io
                .read_at(self.phys(page_base, phys_start), (first_lsn - page_base) as usize)?;
            region[..existing.len()].copy_from_slice(&existing);
        }
        let off = (first_lsn - page_base) as usize;
        region[off..off + image.len()].copy_from_slice(&image);

        let reqs: Vec<WriteRequest> = region
            .chunks(self.page_size)
            .enumerate()
            .map(|(i, chunk)| WriteRequest::new(self.phys(page_base, phys_start) + (i * self.page_size) as u64, chunk))
            .collect();
        if let Err(e) = self.io.psync_write(&reqs) {
            // Put the records back (ahead of any appended meanwhile, which hold
            // later LSNs): a failed force must not leave a hole in the LSN
            // sequence that would truncate every later record at read time. A
            // retried force rewrites the same pages in full, healing whatever
            // prefix of this attempt reached the device.
            let mut inner = self.inner.lock();
            let taken = pending.len();
            inner.pending.splice(0..0, pending);
            debug_assert!(
                inner.pending.len() >= taken,
                "restored records precede concurrent appends"
            );
            return Err(e);
        }

        let mut inner = self.inner.lock();
        inner.durable_lsn = inner.durable_lsn.max(end_byte);
        Ok(())
    }

    /// Reads every durable record back from the device, in LSN order. Used by the
    /// recovery procedure's analysis pass.
    pub fn read_all(&self) -> IoResult<Vec<WalRecord>> {
        Ok(self.scan()?.records)
    }

    /// Reads every durable record back from the device and reports whether the
    /// log ends in a torn record.
    pub fn scan(&self) -> IoResult<WalScan> {
        // The force lock keeps the LSN→byte mapping stable: a concurrent
        // truncation could otherwise compact pages out from under the reads.
        let _serialised = self.force_lock.lock();
        let (durable, trunc, phys_start) = {
            let inner = self.inner.lock();
            (inner.durable_lsn, inner.trunc_lsn, inner.phys_start)
        };
        if durable <= trunc {
            return Ok(WalScan {
                records: Vec::new(),
                torn_tail: false,
            });
        }
        // Read the durable tail past the truncation floor in page-sized psync
        // batches (records below the floor are gone — logically always,
        // physically after a compaction).
        let ps = self.page_size as u64;
        let first_page = trunc / ps;
        let end_page = durable.div_ceil(ps);
        let reqs: Vec<ReadRequest> = (first_page..end_page)
            .map(|p| ReadRequest::new(self.phys(p * ps, phys_start), self.page_size))
            .collect();
        let (bufs, _) = self.io.psync_read(&reqs)?;
        let mut all = Vec::with_capacity(((end_page - first_page) as usize) * self.page_size);
        for b in bufs {
            all.extend_from_slice(&b);
        }
        let window_base = first_page * ps;
        all.truncate((durable - window_base) as usize);
        Ok(parse_records(&all[(trunc - window_base) as usize..], trunc))
    }

    /// Re-derives the durable LSN from the device and returns every intact
    /// record in one pass: the whole log is read forward from its start, and
    /// durability is extended over every intact record found — records that a
    /// force torn by a crash *did* complete are salvaged; the first incomplete
    /// or corrupt record ends the scan (reported as a torn tail, including when
    /// the device's edge cuts a record short). Recovery uses this instead of
    /// [`Wal::scan`], because after a crash the in-memory durable LSN
    /// understates (crash mid-force) what actually reached the device.
    pub fn recover_scan(&self) -> IoResult<(RescanReport, WalScan)> {
        // Only an out-of-range read means the device's edge; any other read
        // error (a transient I/O failure on a real device) must abort recovery
        // rather than silently truncate the log there.
        fn is_edge(e: &pio::IoError) -> bool {
            matches!(e, pio::IoError::OutOfBounds { .. })
        }
        let _serialised = self.force_lock.lock();
        let known = self.durable_lsn();
        // The bounded-recovery seek: adopt the newest durable truncation header
        // (a restarted handle has none in memory) and start the forward scan at
        // the floor it records instead of at byte 0 — replay work is then
        // proportional to the records written since the last truncation, not to
        // the log's lifetime.
        if let Some(h) = self.load_header()? {
            let mut inner = self.inner.lock();
            if h.version > inner.header_version {
                inner.header_version = h.version;
                inner.trunc_lsn = h.trunc_lsn;
                inner.phys_start = h.phys_start;
                inner.truncated = h.truncated;
            }
        }
        let (trunc, phys_start) = {
            let inner = self.inner.lock();
            (inner.trunc_lsn, inner.phys_start)
        };
        let ps = self.page_size as u64;
        let window_base = (trunc / ps) * ps;
        // Read forward one page-aligned chunk at a time until the scan stops
        // making progress (clean end, torn record, or the device's edge). The
        // parse is incremental — each iteration parses only the bytes beyond
        // the last complete record — so the whole scan is O(replayable bytes).
        const CHUNK_PAGES: u64 = 16;
        let chunk_len = (CHUNK_PAGES * self.page_size as u64) as usize;
        let mut window: Vec<u8> = Vec::new();
        let mut records: Vec<WalRecord> = Vec::new();
        // Window offset of the first not-yet-consumed record (LSN −
        // `window_base`; the floor itself may sit mid-page).
        let mut parse_from: usize = (trunc - window_base) as usize;
        let mut torn_tail = false;
        loop {
            let read_off = self.phys(window_base + window.len() as u64, phys_start);
            let before = window.len();
            let mut edge = false;
            match self.io.read_at(read_off, chunk_len) {
                Ok(chunk) => window.extend_from_slice(&chunk),
                Err(e) if is_edge(&e) => {
                    // The chunk overshoots the device's edge: take the pages
                    // that still fit, then finish with what the window holds.
                    while window.len() - before < chunk_len {
                        let off = self.phys(window_base + window.len() as u64, phys_start);
                        match self.io.read_at(off, self.page_size) {
                            Ok(page) => window.extend_from_slice(&page),
                            Err(e) if is_edge(&e) => break,
                            Err(e) => return Err(e),
                        }
                    }
                    edge = true;
                }
                Err(e) => return Err(e),
            }
            if window.len() <= parse_from {
                // The window has not reached the floor yet (the floor sits
                // mid-page and the device's edge — or a short chunk — cut the
                // window before it).
                if edge {
                    break;
                }
                continue;
            }
            let tail_scan = parse_records(&window[parse_from..], window_base + parse_from as u64);
            if let Some(last) = tail_scan.records.last() {
                parse_from = (last.lsn - window_base) as usize + HEADER + last.payload.len();
            }
            records.extend(tail_scan.records);
            if edge {
                // A record still pending at the edge can never complete.
                torn_tail =
                    tail_scan.torn_tail || (parse_from < window.len() && window[parse_from..].iter().any(|&b| b != 0));
                break;
            }
            if tail_scan.torn_tail {
                // A record is incomplete; a longer window cannot complete it
                // unless it simply spans the chunk boundary — detectable because
                // the declared (sane) length reaches past the window.
                let tail = &window[parse_from..];
                let spans_boundary = tail.len() >= HEADER && {
                    let len = u32::from_le_bytes(tail[..4].try_into().expect("4 bytes")) as usize;
                    len != 0 && len <= MAX_RECORD && parse_from + HEADER + len > window.len()
                };
                if !spans_boundary {
                    torn_tail = true;
                    break;
                }
                continue; // not decided yet: fetch more pages
            }
            if parse_from + HEADER <= window.len() {
                // The scan stopped before the window's end at a zero length:
                // clean, never-written space follows the last record.
                break;
            }
            // The window ended exactly at a record boundary; the next chunk may
            // hold more records.
        }
        let end = window_base + parse_from as u64;
        let mut inner = self.inner.lock();
        inner.durable_lsn = end;
        inner.next_lsn = inner.next_lsn.max(end);
        drop(inner);
        Ok((
            RescanReport {
                durable_lsn: end,
                salvaged_bytes: end.saturating_sub(known),
                torn_tail,
            },
            WalScan { records, torn_tail },
        ))
    }

    /// Reads both truncation-header slots and returns the newest valid one, if
    /// any. Never-written slots, torn slot writes and slots past the device's
    /// edge all read as absent.
    fn load_header(&self) -> IoResult<Option<TruncHeader>> {
        let mut best: Option<TruncHeader> = None;
        for slot in 0..HEADER_PAGES {
            let off = self.base_offset + slot * self.page_size as u64;
            let raw = match self.io.read_at(off, SLOT_LEN) {
                Ok(raw) => raw,
                Err(pio::IoError::OutOfBounds { .. }) => continue,
                Err(e) => return Err(e),
            };
            if let Some(h) = decode_slot(&raw) {
                if best.is_none_or(|b| h.version > b.version) {
                    best = Some(h);
                }
            }
        }
        Ok(best)
    }

    /// Durably writes `h` into its slot page. The slot index is the version's
    /// parity, so consecutive truncations alternate slots: a crash that tears
    /// this write leaves the *other* slot's older-but-valid header intact, and
    /// recovery lands on either the old head or the new head — never a torn
    /// hybrid.
    fn write_header(&self, h: &TruncHeader) -> IoResult<()> {
        let mut page = vec![0u8; self.page_size];
        page[..SLOT_LEN].copy_from_slice(&encode_slot(h));
        let off = self.base_offset + (h.version % HEADER_PAGES) * self.page_size as u64;
        self.io.write_at(off, &page)
    }

    /// Drops every record below `lsn` from the log and returns the number of
    /// logical bytes dropped. `lsn` must be a record boundary (an LSN returned
    /// by [`Wal::append`], or [`Wal::durable_lsn`]); it is clamped to the
    /// durable LSN, and a floor at or below the current one is a no-op.
    ///
    /// Truncation is logical first: the floor is persisted in a header slot and
    /// scans simply start at it. When the dead prefix has grown large enough to
    /// hold the surviving tail, the truncation also **compacts** the region
    /// physically — the survivors' pages are copied down to the region start
    /// (into space that holds only dead records, so a crash at any point leaves
    /// the old head recoverable), a zero page is written after them so scans
    /// stop deterministically instead of walking into stale bytes, and only
    /// then is the header flipped. Compaction therefore alternates with
    /// logical-only rounds (a fresh compaction leaves no dead prefix), bounding
    /// physical usage at roughly twice the bytes written per truncation round.
    /// After a compaction the backend is told the space past the survivors is
    /// dead ([`pio::ParallelIo::reclaim_to`]), which real-file backends turn
    /// into a filesystem-level shrink.
    ///
    /// Crash safety: the header write is the *only* commit point. Everything
    /// before it writes into dead space; a torn header write leaves the other
    /// slot valid (see `Wal::write_header`).
    pub fn truncate_to(&self, lsn: Lsn) -> IoResult<u64> {
        // The force lock keeps the LSN→byte mapping stable under concurrent
        // forces (same order as `force`: force lock, then inner).
        let _serialised = self.force_lock.lock();
        let (durable, old) = {
            let inner = self.inner.lock();
            (
                inner.durable_lsn,
                TruncHeader {
                    version: inner.header_version,
                    trunc_lsn: inner.trunc_lsn,
                    phys_start: inner.phys_start,
                    truncated: inner.truncated,
                },
            )
        };
        let target = lsn.min(durable);
        if target <= old.trunc_lsn {
            return Ok(0);
        }
        let ps = self.page_size as u64;
        let new_phys = (target / ps) * ps;
        // Bytes at the region start that hold only dead records under the old
        // mapping — the space a compaction may write into.
        let freed_prefix = (old.trunc_lsn / ps) * ps - old.phys_start;
        // Pages that survive the truncation (the page holding the floor through
        // the page holding the durable tail), rounded up whole.
        let survivors = (durable - new_phys).div_ceil(ps) * ps;
        let compact = new_phys > old.phys_start && survivors + ps <= freed_prefix;
        let phys_start = if compact {
            // Copy the survivors down to the region start. Destination end
            // (survivors + terminator page) ≤ freed prefix ≤ source start, so
            // the copy never overlaps itself and never touches live data.
            let mut copied = 0u64;
            while copied < survivors {
                let page = self
                    .io
                    .read_at(self.phys(new_phys + copied, old.phys_start), self.page_size)?;
                self.io.write_at(self.phys(new_phys + copied, new_phys), &page)?;
                copied += ps;
            }
            // One zero page after the survivors: the scan's deterministic stop,
            // in place of whatever stale record bytes the old mapping left there.
            let zeros = vec![0u8; self.page_size];
            self.io.write_at(self.data_base() + survivors, &zeros)?;
            new_phys
        } else {
            old.phys_start
        };
        let header = TruncHeader {
            version: old.version + 1,
            trunc_lsn: target,
            phys_start,
            truncated: old.truncated + (target - old.trunc_lsn),
        };
        self.write_header(&header)?;
        {
            let mut inner = self.inner.lock();
            inner.trunc_lsn = header.trunc_lsn;
            inner.phys_start = header.phys_start;
            inner.truncated = header.truncated;
            inner.header_version = header.version;
        }
        if compact {
            // Everything past the survivors and their terminator page is dead;
            // backends with a real file can give it back to the filesystem.
            self.io.reclaim_to(self.data_base() + survivors + ps)?;
        }
        Ok(target - old.trunc_lsn)
    }

    /// The truncation floor: the LSN of the oldest record the log still holds.
    pub fn start_lsn(&self) -> Lsn {
        self.inner.lock().trunc_lsn
    }

    /// Lifetime logical bytes dropped by truncation (survives restarts — it is
    /// persisted in the truncation header).
    pub fn truncated_bytes(&self) -> u64 {
        self.inner.lock().truncated
    }

    /// Durable bytes a recovery would replay: everything between the
    /// truncation floor and the durable LSN.
    pub fn replayable_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner.durable_lsn.saturating_sub(inner.trunc_lsn)
    }

    /// [`Wal::recover_scan`] without the record list (durability re-derivation
    /// only).
    pub fn rescan(&self) -> IoResult<RescanReport> {
        Ok(self.recover_scan()?.0)
    }

    /// Discards the in-memory notion of the log (used by tests that simulate a crash:
    /// pending, un-forced records are lost; durable ones survive on the device).
    pub fn simulate_crash(&self) -> Lsn {
        let mut inner = self.inner.lock();
        inner.pending.clear();
        inner.next_lsn = inner.durable_lsn;
        inner.durable_lsn
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Wal")
            .field("base_offset", &self.base_offset)
            .field("next_lsn", &inner.next_lsn)
            .field("durable_lsn", &inner.durable_lsn)
            .field("trunc_lsn", &inner.trunc_lsn)
            .field("phys_start", &inner.phys_start)
            .field("truncated", &inner.truncated)
            .field("pending", &inner.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio::{CrashPlan, FaultClock, FaultIo, IoQueue, SimPsyncIo, TornWrite};
    use ssd_sim::DeviceProfile;

    fn wal() -> Wal {
        let io = Arc::new(SimPsyncIo::with_profile(DeviceProfile::F120, 64 * 1024 * 1024));
        Wal::new(io, 0, 4096)
    }

    #[test]
    fn append_assigns_increasing_lsns() {
        let w = wal();
        let a = w.append(b"first");
        let b = w.append(b"second");
        assert!(b > a);
        assert_eq!(w.pending_records(), 2);
        assert_eq!(w.durable_lsn(), 0);
    }

    #[test]
    fn force_then_read_all_round_trips() {
        let w = wal();
        let payloads: Vec<Vec<u8>> = (0..100u32).map(|i| format!("record-{i}").into_bytes()).collect();
        for p in &payloads {
            w.append(p);
        }
        w.force().unwrap();
        let records = w.read_all().unwrap();
        assert_eq!(records.len(), 100);
        for (rec, expect) in records.iter().zip(&payloads) {
            assert_eq!(&rec.payload, expect);
        }
        // LSNs must be strictly increasing.
        assert!(records.windows(2).all(|w| w[0].lsn < w[1].lsn));
    }

    #[test]
    fn multiple_forces_accumulate() {
        let w = wal();
        w.append(b"aaaa");
        w.force().unwrap();
        w.append(b"bbbb");
        w.append(b"cccc");
        w.force().unwrap();
        let recs = w.read_all().unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].payload, b"aaaa");
        assert_eq!(recs[2].payload, b"cccc");
    }

    #[test]
    fn unforced_records_are_lost_on_crash() {
        let w = wal();
        w.append(b"durable");
        w.force().unwrap();
        w.append(b"volatile");
        w.simulate_crash();
        let recs = w.read_all().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].payload, b"durable");
        // New appends continue from the durable LSN.
        let lsn = w.append(b"after");
        assert_eq!(lsn, w.durable_lsn());
    }

    #[test]
    fn force_with_nothing_pending_is_a_noop() {
        let w = wal();
        w.force().unwrap();
        assert_eq!(w.durable_lsn(), 0);
        assert!(w.read_all().unwrap().is_empty());
    }

    #[test]
    fn large_records_spanning_pages() {
        let w = wal();
        let big = vec![0xCD; 10_000];
        w.append(&big);
        w.append(b"tail");
        w.force().unwrap();
        let recs = w.read_all().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].payload, big);
        assert_eq!(recs[1].payload, b"tail");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_records_are_rejected() {
        wal().append(b"");
    }

    #[test]
    fn clean_log_scan_reports_no_torn_tail() {
        let w = wal();
        w.append(b"one");
        w.append(b"two");
        w.force().unwrap();
        let scan = w.scan().unwrap();
        assert_eq!(scan.records.len(), 2);
        assert!(!scan.torn_tail);
    }

    /// A WAL over a fault-injected backend whose force is torn mid-batch: the
    /// rescan must salvage every record that fit in the written prefix, report
    /// the tail as torn, and leave the log appendable.
    #[test]
    fn rescan_salvages_records_from_a_torn_force() {
        let clock = FaultClock::new();
        let sim: Arc<dyn IoQueue> = Arc::new(SimPsyncIo::with_profile(DeviceProfile::F120, 64 << 20));
        let faulty = Arc::new(FaultIo::new(sim, Arc::clone(&clock)));
        let w = Wal::new(Arc::new(faulty) as Arc<dyn ParallelIo>, 0, 4096);

        // One durable force to anchor durable_lsn.
        w.append(b"anchor");
        w.force().unwrap();
        let anchored = w.durable_lsn();

        // A force spanning 3 pages (records of 1000 bytes each), torn after the
        // first page plus 100 bytes of the second.
        for i in 0..10u32 {
            w.append(&vec![i as u8 + 1; 1000]);
        }
        clock.arm(CrashPlan::at_write(clock.writes_seen()).with_torn(TornWrite {
            keep_requests: 1,
            keep_bytes_of_next: 100,
        }));
        assert!(w.force().is_err());
        clock.heal();
        w.simulate_crash();
        assert_eq!(w.durable_lsn(), anchored, "failed force advanced nothing");

        let report = w.rescan().unwrap();
        assert!(report.torn_tail, "the torn record must be detected");
        assert!(report.salvaged_bytes > 0, "complete records in page 1 are salvageable");
        let recs = w.read_all().unwrap();
        // The anchor plus every 1000-byte record that fit in the torn prefix.
        assert!(recs.len() >= 2 && recs.len() < 11, "{} records", recs.len());
        assert_eq!(recs[0].payload, b"anchor");
        for (i, r) in recs[1..].iter().enumerate() {
            assert_eq!(r.payload, vec![i as u8 + 1; 1000], "salvaged record {i} is intact");
        }

        // The log continues cleanly after the torn tail.
        w.append(b"post-crash");
        w.force().unwrap();
        let recs = w.read_all().unwrap();
        assert_eq!(recs.last().unwrap().payload, b"post-crash");
    }

    #[test]
    fn failed_force_keeps_records_for_retry() {
        let clock = FaultClock::new();
        let sim: Arc<dyn IoQueue> = Arc::new(SimPsyncIo::with_profile(DeviceProfile::F120, 64 << 20));
        let faulty = Arc::new(FaultIo::new(sim, Arc::clone(&clock)));
        let w = Wal::new(Arc::new(faulty) as Arc<dyn ParallelIo>, 0, 4096);
        w.append(b"first");
        clock.arm(CrashPlan::at_write(clock.writes_seen()).transient());
        assert!(w.force().is_err());
        assert_eq!(w.pending_records(), 1, "failed force must not drop records");
        w.append(b"second");
        w.force().unwrap();
        let recs = w.read_all().unwrap();
        assert_eq!(recs.len(), 2, "no LSN hole after the retried force");
        assert_eq!(recs[0].payload, b"first");
        assert_eq!(recs[1].payload, b"second");
    }

    /// Concurrent append+force storms must never lose or corrupt a record:
    /// forces are serialised end to end, because two in-flight forces would
    /// both rebuild the page holding their shared boundary record.
    #[test]
    fn concurrent_forces_do_not_corrupt_shared_pages() {
        let w = Arc::new(wal());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let w = Arc::clone(&w);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    w.append(format!("thread-{t}-record-{i}").as_bytes());
                    w.force().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        w.force().unwrap();
        let recs = w.read_all().unwrap();
        assert_eq!(recs.len(), 200, "every record must survive the storm");
        let mut seen: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
        for r in &recs {
            assert!(seen.insert(r.payload.clone()), "duplicate record {:?}", r.payload);
        }
        assert!(!w.scan().unwrap().torn_tail);
    }

    #[test]
    fn rescan_of_a_clean_log_is_a_noop() {
        let w = wal();
        w.append(b"steady");
        w.force().unwrap();
        let before = w.durable_lsn();
        let report = w.rescan().unwrap();
        assert_eq!(report.durable_lsn, before);
        assert_eq!(report.salvaged_bytes, 0);
        assert!(!report.torn_tail);
    }

    #[test]
    fn rescan_salvages_a_whole_unrecorded_force() {
        // The force completes on the device but the process dies before
        // durable_lsn is advanced (crash between psync_write returning and the
        // bookkeeping): model by writing via a second Wal handle over the same
        // backend.
        let io: Arc<dyn ParallelIo> = Arc::new(SimPsyncIo::with_profile(DeviceProfile::F120, 64 << 20));
        let w1 = Wal::new(Arc::clone(&io), 0, 4096);
        w1.append(b"seen");
        w1.force().unwrap();
        w1.append(b"lost-bookkeeping");
        w1.force().unwrap();
        // A restarted handle with no in-memory state at all: the rescan must
        // rebuild durability purely from the device.
        let w2 = Wal::new(io, 0, 4096);
        let report = w2.rescan().unwrap();
        assert!(!report.torn_tail);
        assert!(report.salvaged_bytes > 0);
        let recs = w2.read_all().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].payload, b"lost-bookkeeping");
    }

    #[test]
    fn truncate_drops_records_below_the_floor() {
        let w = wal();
        let mut lsns = Vec::new();
        for i in 0..20u32 {
            lsns.push(w.append(format!("rec-{i:02}").as_bytes()));
        }
        w.force().unwrap();
        let floor = lsns[12];
        let dropped = w.truncate_to(floor).unwrap();
        assert_eq!(dropped, floor, "every byte below the floor is dropped");
        assert_eq!(w.start_lsn(), floor);
        assert_eq!(w.truncated_bytes(), floor);
        assert_eq!(w.replayable_bytes(), w.durable_lsn() - floor);
        let recs = w.read_all().unwrap();
        assert_eq!(recs.len(), 8);
        assert_eq!(recs[0].lsn, floor);
        assert_eq!(recs[0].payload, b"rec-12");
        // Truncating to (or below) the current floor is a no-op.
        assert_eq!(w.truncate_to(lsns[5]).unwrap(), 0);
        assert_eq!(w.truncate_to(floor).unwrap(), 0);
        // The log stays appendable and LSNs keep increasing monotonically.
        let tail = w.append(b"after-truncation");
        assert!(tail > floor);
        w.force().unwrap();
        let recs = w.read_all().unwrap();
        assert_eq!(recs.len(), 9);
        assert_eq!(recs.last().unwrap().payload, b"after-truncation");
    }

    #[test]
    fn truncation_survives_a_restart() {
        let io: Arc<dyn ParallelIo> = Arc::new(SimPsyncIo::with_profile(DeviceProfile::F120, 64 << 20));
        let w1 = Wal::new(Arc::clone(&io), 0, 4096);
        let mut lsns = Vec::new();
        for i in 0..30u32 {
            lsns.push(w1.append(format!("persist-{i:02}").as_bytes()));
        }
        w1.force().unwrap();
        let floor = lsns[17];
        w1.truncate_to(floor).unwrap();
        // A restarted handle with no in-memory state: the header slot tells it
        // the floor and the recovery scan starts there, not at byte 0.
        let w2 = Wal::new(io, 0, 4096);
        let (report, scan) = w2.recover_scan().unwrap();
        assert!(!report.torn_tail);
        assert_eq!(report.durable_lsn, w1.durable_lsn());
        assert_eq!(w2.start_lsn(), floor);
        assert_eq!(w2.truncated_bytes(), floor);
        assert_eq!(scan.records.len(), 13);
        assert_eq!(scan.records[0].lsn, floor);
        assert_eq!(scan.records[0].payload, b"persist-17");
        // And the restarted handle appends where the old one left off.
        w2.append(b"continues");
        w2.force().unwrap();
        assert_eq!(w2.read_all().unwrap().last().unwrap().payload, b"continues");
    }

    /// Round after round of append → force → truncate must bound the log's
    /// *physical* footprint, not just its logical replay window: the dead
    /// prefix is periodically compacted away by sliding the survivors back to
    /// the region start.
    #[test]
    fn repeated_truncation_compacts_the_region_physically() {
        let io: Arc<dyn ParallelIo> = Arc::new(SimPsyncIo::with_profile(DeviceProfile::F120, 64 << 20));
        let w = Wal::new(Arc::clone(&io), 0, 4096);
        let mut last_tail = 0;
        for round in 0..6u32 {
            for i in 0..60u32 {
                w.append(&vec![(round * 60 + i) as u8; 1000]);
            }
            last_tail = w.append(format!("tail-{round}").as_bytes());
            w.force().unwrap();
            w.truncate_to(last_tail).unwrap();
            assert!(
                w.replayable_bytes() < 2 * 4096,
                "round {round}: the replay window stays bounded at the tail record"
            );
        }
        let (durable, phys_start) = {
            let inner = w.inner.lock();
            (inner.durable_lsn, inner.phys_start)
        };
        assert!(phys_start > 0, "six rounds must have compacted at least once");
        let physical_extent = durable - phys_start;
        assert!(
            physical_extent * 2 < durable,
            "physical footprint ({physical_extent} B) stays far below lifetime bytes ({durable} B)"
        );
        // The surviving tail reads back through the moved mapping...
        let recs = w.read_all().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].payload, b"tail-5");
        // ...and a restarted handle agrees byte for byte.
        let w2 = Wal::new(io, 0, 4096);
        let (report, scan) = w2.recover_scan().unwrap();
        assert!(!report.torn_tail);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].lsn, last_tail);
        assert_eq!(scan.records[0].payload, b"tail-5");
    }

    /// A crash that tears the truncation-header write must leave the log on
    /// exactly the old head or the new head — the slots alternate, so the
    /// previous header always survives a torn write of the next one.
    #[test]
    fn torn_truncation_header_leaves_old_or_new_head() {
        // Below 44 bytes the new slot's checksum cannot be complete → old
        // head; at 44+ the slot is whole (the rest of its page is zeros
        // anyway) → new head. Both are legal; torn hybrids are not.
        for keep_bytes in [0usize, 7, 43, 44, 100] {
            let clock = FaultClock::new();
            let sim: Arc<dyn IoQueue> = Arc::new(SimPsyncIo::with_profile(DeviceProfile::F120, 64 << 20));
            let faulty: Arc<dyn ParallelIo> = Arc::new(FaultIo::new(sim, Arc::clone(&clock)));
            let w = Wal::new(Arc::clone(&faulty), 0, 4096);
            let mut lsns = Vec::new();
            for i in 0..12u32 {
                lsns.push(w.append(format!("t-{i:02}").as_bytes()));
            }
            w.force().unwrap();
            let first_floor = lsns[4];
            w.truncate_to(first_floor).unwrap();
            // Tear the second truncation's header write mid-page. (Both
            // truncations are logical-only — everything fits in page 0 — so
            // the header is the truncation's sole write.)
            let second_floor = lsns[9];
            clock.arm(CrashPlan::at_write(clock.writes_seen()).with_torn(TornWrite {
                keep_requests: 0,
                keep_bytes_of_next: keep_bytes,
            }));
            assert!(w.truncate_to(second_floor).is_err(), "keep_bytes={keep_bytes}");
            clock.heal();

            // A restarted handle must land on exactly one of the two heads.
            let w2 = Wal::new(faulty, 0, 4096);
            let (report, scan) = w2.recover_scan().unwrap();
            assert!(!report.torn_tail, "keep_bytes={keep_bytes}");
            let floor = w2.start_lsn();
            assert!(
                floor == first_floor || floor == second_floor,
                "keep_bytes={keep_bytes}: floor {floor} is neither the old nor the new head"
            );
            let from = lsns.iter().position(|&l| l == floor).unwrap();
            assert_eq!(scan.records.len(), 12 - from, "keep_bytes={keep_bytes}");
            assert_eq!(scan.records[0].lsn, floor);
            for (r, &lsn) in scan.records.iter().zip(&lsns[from..]) {
                assert_eq!(r.lsn, lsn, "keep_bytes={keep_bytes}: surviving records are intact");
            }
        }
    }

    /// A crash in the middle of a compaction's copy phase is harmless: the
    /// copies only ever write into space that holds dead records, and the
    /// header — the sole commit point — was never flipped.
    #[test]
    fn crash_during_compaction_copy_preserves_the_old_head() {
        let clock = FaultClock::new();
        let sim: Arc<dyn IoQueue> = Arc::new(SimPsyncIo::with_profile(DeviceProfile::F120, 64 << 20));
        let faulty: Arc<dyn ParallelIo> = Arc::new(FaultIo::new(sim, Arc::clone(&clock)));
        let w = Wal::new(Arc::clone(&faulty), 0, 4096);
        // Round 1: ~5 pages of records, then a logical-only truncation (the
        // floor advances but the bytes stay where they are).
        let mut lsns = Vec::new();
        for i in 0..20u32 {
            lsns.push(w.append(&vec![i as u8 + 1; 1000]));
        }
        w.force().unwrap();
        let first_floor = lsns[18];
        w.truncate_to(first_floor).unwrap();
        // Round 2: this truncation has a dead prefix to compact into. Crash
        // on its first copy write.
        for i in 20..24u32 {
            lsns.push(w.append(&vec![i as u8 + 1; 1000]));
        }
        w.force().unwrap();
        let second_floor = lsns[22];
        clock.arm(CrashPlan::at_write(clock.writes_seen()).transient());
        assert!(w.truncate_to(second_floor).is_err(), "the compaction copy write fails");
        clock.heal();

        // The header was never flipped: a restarted handle sees the old head,
        // records intact.
        let w2 = Wal::new(faulty, 0, 4096);
        let (report, scan) = w2.recover_scan().unwrap();
        assert!(!report.torn_tail);
        assert_eq!(w2.start_lsn(), first_floor);
        assert_eq!(scan.records.len(), lsns.len() - 18);
        for (r, &lsn) in scan.records.iter().zip(&lsns[18..]) {
            assert_eq!(r.lsn, lsn, "old-head records are intact");
        }
        // Healed, the retried truncation succeeds — and compacts.
        let moved = w2.truncate_to(second_floor).unwrap();
        assert!(moved > 0);
        assert!(w2.inner.lock().phys_start > 0, "the retried truncation compacts");
        let recs = w2.read_all().unwrap();
        assert_eq!(recs.first().unwrap().lsn, second_floor);
        assert_eq!(recs.len(), 2);
    }
}
