//! A scan-resistant cache for multi-page leaf regions.
//!
//! The [`crate::BufferPool`] in front of the store caches *single pages* — the
//! internal nodes — and region reads deliberately bypass it (see
//! [`crate::CachedStore::read_region`]), so until this module existed the leaf
//! level of the PIO B-tree was never cached at all. A plain LRU would be the
//! wrong fix: one `range_search` streams every leaf of the range through the
//! cache exactly once and would flush the point-lookup working set on its way
//! through. This cache is therefore a **segmented LRU** (probation +
//! protected) with an explicit **scan bypass**:
//!
//! * Reads carry an [`AccessHint`]. `Point` reads behave like a classic SLRU:
//!   a first touch lands the region in the *probation* segment, a re-reference
//!   promotes it to the *protected* segment (capped at 4/5 of the budget, so
//!   probation always retains churn room), and eviction drains probation
//!   before it touches protected.
//! * `Scan` reads may **hit** an already-cached region (the stream still
//!   benefits from the hot set) but never insert, never promote and never
//!   refresh recency — a full-range scan flows past the cache without evicting
//!   a single resident region. Each such skipped fill is counted in
//!   [`LeafCacheStats::scan_bypasses`].
//!
//! Entries are keyed by the region's first [`PageId`] and weighted by their
//! page count against a fixed page budget. The index is a `BTreeMap` so that
//! single-page writes (bupdate's leaf-segment appends land *inside* a cached
//! region) can find and invalidate the covering region in `O(log n)`.

use crate::page::PageId;
use std::collections::{BTreeMap, VecDeque};

/// How a leaf-region read intends to use the data — decides cache admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessHint {
    /// Point-lookup-style access: cacheable, re-references promote.
    #[default]
    Point,
    /// Sequential-scan access: may hit resident entries but never inserts,
    /// promotes or refreshes recency.
    Scan,
}

/// Monotonic counters of a [`LeafCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeafCacheStats {
    /// Region reads served from the cache (either hint).
    pub hits: u64,
    /// `Point` reads that had to go to the device (and were then admitted).
    pub misses: u64,
    /// `Scan` reads that went to the device and deliberately skipped admission.
    pub scan_bypasses: u64,
    /// Resident regions evicted to make room.
    pub evictions: u64,
}

impl LeafCacheStats {
    /// Hit ratio over the cache-eligible (`Point`) traffic plus scan hits.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates `other` into `self` (engine roll-up across shards).
    pub fn merge(&mut self, other: &LeafCacheStats) {
        let LeafCacheStats {
            hits,
            misses,
            scan_bypasses,
            evictions,
        } = other;
        self.hits += hits;
        self.misses += misses;
        self.scan_bypasses += scan_bypasses;
        self.evictions += evictions;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Probation,
    Protected,
}

#[derive(Debug)]
struct Entry {
    data: Vec<u8>,
    pages: u64,
    stamp: u64,
    seg: Segment,
}

/// Segmented-LRU leaf-region cache with scan bypass. Not internally
/// synchronised — [`crate::CachedStore`] wraps it in a mutex.
#[derive(Debug)]
pub struct LeafCache {
    capacity_pages: u64,
    /// Ceiling of the protected segment (4/5 of capacity): promotion beyond it
    /// demotes the protected LRU back to probation instead of growing.
    protected_cap: u64,
    entries: BTreeMap<PageId, Entry>,
    /// LRU orders as (page, stamp) queues; stale pairs (entry touched again or
    /// moved segment) are skipped on pop, like the buffer pool's queue.
    probation: VecDeque<(PageId, u64)>,
    protected: VecDeque<(PageId, u64)>,
    used_pages: u64,
    protected_pages: u64,
    next_stamp: u64,
    stats: LeafCacheStats,
}

impl LeafCache {
    /// Creates a cache holding at most `capacity_pages` pages of leaf regions.
    pub fn new(capacity_pages: u64) -> Self {
        Self {
            capacity_pages,
            protected_cap: capacity_pages * 4 / 5,
            entries: BTreeMap::new(),
            probation: VecDeque::new(),
            protected: VecDeque::new(),
            used_pages: 0,
            protected_pages: 0,
            next_stamp: 0,
            stats: LeafCacheStats::default(),
        }
    }

    /// The configured budget in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Pages currently resident.
    pub fn used_pages(&self) -> u64 {
        self.used_pages
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LeafCacheStats {
        self.stats
    }

    fn stamp(&mut self) -> u64 {
        self.next_stamp += 1;
        self.next_stamp
    }

    /// Looks up the region starting at `first`. `Point` hits promote/refresh;
    /// `Scan` hits leave the LRU state untouched. Misses are counted according
    /// to the hint (`Point` → miss, `Scan` → bypass) — a `Scan` miss tells the
    /// caller *not* to call [`LeafCache::insert`] afterwards.
    pub fn get(&mut self, first: PageId, hint: AccessHint) -> Option<Vec<u8>> {
        if !self.entries.contains_key(&first) {
            match hint {
                AccessHint::Point => self.stats.misses += 1,
                AccessHint::Scan => self.stats.scan_bypasses += 1,
            }
            return None;
        }
        self.stats.hits += 1;
        if hint == AccessHint::Point {
            self.touch(first);
        }
        Some(self.entries[&first].data.clone())
    }

    /// Promotes (or refreshes) `first` after a point re-reference.
    fn touch(&mut self, first: PageId) {
        let stamp = self.stamp();
        let entry = self.entries.get_mut(&first).expect("touch of resident entry");
        entry.stamp = stamp;
        match entry.seg {
            Segment::Protected => self.protected.push_back((first, stamp)),
            Segment::Probation => {
                entry.seg = Segment::Protected;
                let pages = entry.pages;
                self.protected.push_back((first, stamp));
                self.protected_pages += pages;
                self.shrink_protected();
            }
        }
    }

    /// Demotes protected-LRU entries to probation until the protected segment
    /// is back under its cap. Total residency is unchanged.
    fn shrink_protected(&mut self) {
        while self.protected_pages > self.protected_cap {
            let Some((page, stamp)) = self.protected.pop_front() else {
                break;
            };
            let Some(entry) = self.entries.get_mut(&page) else {
                continue; // invalidated since queued
            };
            if entry.stamp != stamp || entry.seg != Segment::Protected {
                continue; // stale queue pair
            }
            entry.seg = Segment::Probation;
            let fresh = self.next_stamp + 1;
            self.next_stamp = fresh;
            let entry = self.entries.get_mut(&page).expect("still resident");
            entry.stamp = fresh;
            self.protected_pages -= entry.pages;
            self.probation.push_back((page, fresh));
        }
    }

    /// Admits a region fetched by a `Point` read. Re-inserting a resident
    /// region refreshes its bytes in place. Regions larger than the whole
    /// budget are not admitted.
    pub fn insert(&mut self, first: PageId, pages: u64, data: Vec<u8>) {
        if pages == 0 || pages > self.capacity_pages {
            return;
        }
        if let Some(entry) = self.entries.get_mut(&first) {
            // Concurrent missers can race to admit the same region; keep the
            // segment, refresh the bytes.
            entry.data = data;
            return;
        }
        let stamp = self.stamp();
        self.entries.insert(
            first,
            Entry {
                data,
                pages,
                stamp,
                seg: Segment::Probation,
            },
        );
        self.probation.push_back((first, stamp));
        self.used_pages += pages;
        self.evict_to_fit();
    }

    /// Evicts probation-LRU (then protected-LRU) entries until the budget
    /// holds.
    fn evict_to_fit(&mut self) {
        while self.used_pages > self.capacity_pages {
            let (page, stamp, seg) = match self.probation.pop_front() {
                Some((p, s)) => (p, s, Segment::Probation),
                None => match self.protected.pop_front() {
                    Some((p, s)) => (p, s, Segment::Protected),
                    None => break,
                },
            };
            let Some(entry) = self.entries.get(&page) else {
                continue;
            };
            if entry.stamp != stamp || entry.seg != seg {
                continue; // stale queue pair
            }
            let entry = self.entries.remove(&page).expect("checked above");
            self.used_pages -= entry.pages;
            if entry.seg == Segment::Protected {
                self.protected_pages -= entry.pages;
            }
            self.stats.evictions += 1;
        }
    }

    fn remove_entry(&mut self, first: PageId) {
        if let Some(entry) = self.entries.remove(&first) {
            self.used_pages -= entry.pages;
            if entry.seg == Segment::Protected {
                self.protected_pages -= entry.pages;
            }
        }
    }

    /// Drops the region (if any) that *contains* page `p`. Resident regions
    /// are disjoint, so at most one entry can cover any page.
    pub fn invalidate_page(&mut self, p: PageId) {
        if let Some((&first, entry)) = self.entries.range(..=p).next_back() {
            if first + entry.pages > p {
                self.remove_entry(first);
            }
        }
    }

    /// Drops every region intersecting `[first, first + n_pages)`.
    pub fn invalidate_range(&mut self, first: PageId, n_pages: u64) {
        if n_pages == 0 {
            return;
        }
        // One resident region may start below `first` and reach into the
        // range; the rest start inside it.
        self.invalidate_page(first);
        let inside: Vec<PageId> = self.entries.range(first..first + n_pages).map(|(&p, _)| p).collect();
        for p in inside {
            self.remove_entry(p);
        }
    }

    /// Drops everything (crash simulation / cold-phase resets). Counters are
    /// kept — they are monotonic like every other stat in the repo.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.probation.clear();
        self.protected.clear();
        self.used_pages = 0;
        self.protected_pages = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(byte: u8, pages: u64) -> Vec<u8> {
        vec![byte; (pages * 16) as usize]
    }

    #[test]
    fn point_miss_admits_and_rereference_promotes() {
        let mut c = LeafCache::new(10);
        assert!(c.get(4, AccessHint::Point).is_none());
        c.insert(4, 2, region(1, 2));
        assert_eq!(c.get(4, AccessHint::Point).unwrap(), region(1, 2));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(c.used_pages(), 2);
    }

    #[test]
    fn scan_miss_is_a_bypass_and_scan_hits_do_not_promote() {
        let mut c = LeafCache::new(10);
        assert!(c.get(4, AccessHint::Scan).is_none());
        assert_eq!(c.stats().scan_bypasses, 1);
        assert_eq!(c.stats().misses, 0);
        // A resident entry still serves scan hits.
        c.insert(4, 2, region(1, 2));
        assert_eq!(c.get(4, AccessHint::Scan).unwrap(), region(1, 2));
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn eviction_drains_probation_before_protected() {
        let mut c = LeafCache::new(6);
        // Protect region 0 with a re-reference.
        c.insert(0, 2, region(0, 2));
        c.get(0, AccessHint::Point);
        // Fill with one-touch probation entries; region 0 must survive.
        for i in 0..8u64 {
            let first = 10 + i * 2;
            c.get(first, AccessHint::Point);
            c.insert(first, 2, region(i as u8, 2));
        }
        assert!(
            c.get(0, AccessHint::Scan).is_some(),
            "protected entry evicted by probation churn"
        );
        assert!(c.stats().evictions > 0);
        assert!(c.used_pages() <= 6);
    }

    #[test]
    fn scan_stream_cannot_evict_the_point_working_set() {
        let mut c = LeafCache::new(8);
        // Hot set: 3 regions, touched twice (→ protected).
        for first in [0u64, 2, 4] {
            c.get(first, AccessHint::Point);
            c.insert(first, 2, region(first as u8, 2));
            c.get(first, AccessHint::Point);
        }
        // A 100-region scan streams past.
        for i in 0..100u64 {
            let first = 100 + i * 2;
            if c.get(first, AccessHint::Scan).is_none() {
                // Device fetch happens here; a scan read does NOT insert.
            }
        }
        for first in [0u64, 2, 4] {
            assert!(
                c.get(first, AccessHint::Scan).is_some(),
                "scan evicted hot region {first}"
            );
        }
        assert_eq!(c.stats().scan_bypasses, 100);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn protected_cap_demotes_instead_of_growing() {
        let mut c = LeafCache::new(10); // protected cap = 8
        for first in [0u64, 2, 4, 6, 8] {
            c.get(first, AccessHint::Point);
            c.insert(first, 2, region(first as u8, 2));
            c.get(first, AccessHint::Point); // promote
        }
        // All five were promoted (10 pages), but protected holds ≤ 8 pages:
        // at least one was demoted back to probation, none were lost.
        assert_eq!(c.used_pages(), 10);
        for first in [0u64, 2, 4, 6, 8] {
            assert!(c.get(first, AccessHint::Scan).is_some());
        }
    }

    #[test]
    fn invalidation_by_interior_page_and_by_range() {
        let mut c = LeafCache::new(16);
        c.insert(4, 4, region(1, 4));
        c.insert(8, 2, region(2, 2));
        // Page 6 lies inside the region starting at 4.
        c.invalidate_page(6);
        assert!(c.get(4, AccessHint::Scan).is_none());
        assert!(c.get(8, AccessHint::Scan).is_some());
        // A range write overlapping [7, 9) kills the region at 8.
        c.invalidate_range(7, 2);
        assert!(c.get(8, AccessHint::Scan).is_none());
        assert_eq!(c.used_pages(), 0);
    }

    #[test]
    fn oversized_region_is_not_admitted_and_clear_empties() {
        let mut c = LeafCache::new(4);
        c.insert(0, 8, region(1, 8));
        assert_eq!(c.used_pages(), 0);
        c.insert(0, 2, region(1, 2));
        assert_eq!(c.used_pages(), 2);
        c.clear();
        assert_eq!(c.used_pages(), 0);
        assert!(c.get(0, AccessHint::Scan).is_none());
    }
}
