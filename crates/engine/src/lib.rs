//! # engine — the sharded PIO engine
//!
//! The PIO B-tree (Roh et al., PVLDB 2011) exploits SSD-internal parallelism
//! *within* one tree: MPSearch, prange search and batch updates all issue psync
//! calls of up to `PioMax` outstanding I/Os. But a single tree still has one root,
//! one operation queue and one psync stream, so everything above the I/O layer is
//! serialised. This crate multiplies the paper's parallelism one level up:
//!
//! * [`ShardedPioEngine`] partitions the key space across `N` independent
//!   [`pio_btree::PioBTree`] shards, each with its own
//!   [`storage::CachedStore`], OPQ and (optional) WAL — one "index file" per shard,
//!   the layout the paper's Figure 4(b) shows behaves like independent psync
//!   streams;
//! * a **router** splits `multi_search` / `insert_batch` / `range_search` requests
//!   by shard and hands them to a persistent per-shard worker pool driven by one
//!   event-driven scheduler thread (zero threads spawned per call); completions
//!   are reaped as they land, collected by shard index, and stitched back into
//!   caller order;
//! * a **background maintenance worker** drains shard OPQs at a configurable fill
//!   threshold, moving bupdate flushes off the foreground critical path;
//! * [`EngineStats`] aggregates per-shard [`pio_btree::PioStats`], buffer-pool hit
//!   ratios and store counters, and separates *device work* (`total_io_us`) from
//!   the *schedule makespan* (`scheduled_io_us`) so the cross-shard overlap win is
//!   directly measurable;
//! * engine-wide **memory budgets** — [`EngineConfig`]'s `inner_tier_bytes`
//!   pins each shard's inner levels in memory ([`pio_btree::inner_tier`]:
//!   immutable snapshots, seqlock-style optimistic reads, republished at flush
//!   commits and re-pinned by the maintenance tick after crashes/migrations),
//!   and `leaf_cache_bytes` gives leaf regions a scan-resistant segmented-LRU
//!   cache; both divide across shards, are validated (non-zero, page-multiple)
//!   and roll up in [`EngineStats`] (`inner_tier_hit_rate`,
//!   `leaf_cache_hit_rate`);
//! * shard boundaries are chosen from a key sample at construction time
//!   (quantiles, topped up with uniform cuts), so a skewed key population still
//!   loads balanced shards;
//! * [`TreeTarget`] and the [`workload::IndexTarget`] implementation let the
//!   synthetic and TPC-C generators drive the engine (or a single tree) directly.
//!
//! ## Storage topology
//!
//! *Where* the shards live is a first-class, pluggable decision: engines are
//! constructed through one [`EngineBuilder`] over a [`ShardProvisioner`]
//! topology (the [`topology`] module):
//!
//! | topology | placement | what it shows |
//! |---|---|---|
//! | [`DevicePerShard`] | one simulated device per shard (default) | Figure 4(b)'s separate-file layout: free cross-shard overlap |
//! | [`SharedDevice`] | all shards as [`pio::PartitionIo`] partitions of **one** device | the paper's real claim — shards contending for one SSD's channels and host interface |
//! | [`RealFiles`] | one real file per shard + persisted manifest ([`pio::FileThreadPoolIo`]) | a persistent engine: survives the process, reopens via [`EngineBuilder::recover`] |
//! | [`EngineBackends`] (hand-built) | caller-supplied queues | the crash-injection seam of the recovery tests ([`pio::FaultIo`] wrappers) |
//!
//! ```
//! use engine::{EngineBuilder, EngineConfig, SharedDevice};
//!
//! let entries: Vec<(u64, u64)> = (0..10_000).map(|k| (k, k)).collect();
//! let engine = EngineBuilder::new(EngineConfig::default())
//!     .topology(SharedDevice) // all shards on ONE simulated SSD
//!     .entries(&entries)
//!     .build()
//!     .unwrap();
//! assert_eq!(engine.stats().topology, "shared-device");
//! ```
//!
//! Migration from the historic constructors:
//!
//! | old constructor | builder call |
//! |---|---|
//! | `ShardedPioEngine::create(cfg, sample)` | `EngineBuilder::new(cfg).key_sample(sample).build()` (still available as a thin wrapper) |
//! | `ShardedPioEngine::bulk_load(cfg, entries)` | `EngineBuilder::new(cfg).entries(entries).build()` (still available as a thin wrapper) |
//! | `ShardedPioEngine::bulk_load_with_sample(cfg, entries, sample)` | `EngineBuilder::new(cfg).entries(entries).key_sample(sample).build()` |
//! | `ShardedPioEngine::create_with_backends(cfg, sample, backends)` | `EngineBuilder::new(cfg).key_sample(sample).topology(backends).build()` |
//! | `ShardedPioEngine::bulk_load_with_backends(cfg, entries, backends)` | `EngineBuilder::new(cfg).entries(entries).topology(backends).build()` |
//!
//! A [`RealFiles`] engine persists an [`EngineManifest`] (shard boundaries plus
//! each shard's superblock: root, height, allocation frontier) at creation,
//! checkpoints, maintenance flushes and recovery; [`EngineBuilder::recover`]
//! reopens the directory, restores the snapshots and replays the WALs — root
//! growths and page allocations that happened after the last manifest sync are
//! rolled forward from the logs' `FlushRoot`/`FlushAlloc` records.
//!
//! ## Cross-shard crash recovery
//!
//! Each shard recovers from its own WAL (Section 3.4 of the paper), but a
//! batched insert fans one logical batch out to several shards — so with WALs
//! enabled, every [`ShardedPioEngine::insert_batch`] runs as a **two-phase flush
//! epoch** over a dedicated engine log (the [`epoch`] module): `Begin` is forced
//! before fan-out, each member shard appends its sub-batch inside an epoch
//! bracket of its own WAL and forces it, the per-shard `Ack`s are forced, and
//! `Commit` is forced last. [`ShardedPioEngine::recover`] replays the shard WALs
//! under the engine log's verdicts, making the batch all-or-nothing across
//! shards wherever the crash lands:
//!
//! | crash point | engine log state | recovery outcome |
//! |---|---|---|
//! | before `Begin` is durable | nothing | no shard ever saw the batch — absent |
//! | mid fan-out (some shards durable) | `Begin`, partial `Ack`s | epoch **discarded** on every shard: logical records dropped, and any flush that already applied them is unwound from its preimages |
//! | between the shards' durable writes and `Commit` | `Begin`, all `Ack`s | epoch **re-driven**: the batch is durable everywhere, so recovery writes the missing `Commit` and replays it — fully present |
//! | after `Commit` | complete | normal per-shard replay — fully present |
//!
//! Partial acks mean the batch *might* be missing on some shard, so the whole
//! epoch is dropped (presumed abort); a full ack set proves it is everywhere, so
//! the epoch is completed instead. Either way no partial batch is ever visible
//! after recovery — the property `tests/engine_recovery.rs` checks for scripted
//! crash points and hundreds of randomized ones against an in-memory oracle,
//! using the [`pio::fault`] crash-injection harness.
//!
//! ## Log lifecycle
//!
//! Left alone, the shard WALs and the engine epoch log grow without bound and
//! every recovery rescans the store's whole history. The engine closes the
//! loop with **checkpoint-anchored truncation**
//! ([`ShardedPioEngine::checkpoint`]):
//!
//! 1. **Incremental checkpoint** — per-shard dirty tracking
//!    ([`pio_btree::PioBTree::dirty_ops`]) selects only the shards that logged
//!    or queued work since their last checkpoint; clean shards are untouched,
//!    so the maintenance worker can run the whole thing on a timer
//!    ([`EngineConfig::checkpoint_interval_ms`]) under live traffic.
//! 2. **Anchored truncation** — once the flushes are durable and the manifest
//!    is synced (the superblocks recovery would need), each flushed shard's
//!    WAL drops everything below its new `Checkpoint` record via
//!    [`storage::Wal::truncate_to`] (an alternating-slot, checksummed header
//!    flip: a crash mid-truncation leaves the old head or the new one, never
//!    a torn in-between), and the engine log drops everything below the
//!    pre-flush cursor. Undecided epochs pin both: the coordinator floors the
//!    engine-log cut at the oldest in-flight `Begin`, and each tree floors
//!    its own cut at its oldest open epoch bracket.
//!    [`EngineConfig::log_retention_bytes`] keeps a configurable tail around.
//! 3. **Bounded recovery** — [`ShardedPioEngine::recover`] seeks each log to
//!    its truncation marker instead of byte 0, so the records it scans
//!    ([`EngineStats::recovery_replayed_records`]) track the work done since
//!    the last checkpoint, not the store's age. On [`RealFiles`], truncation
//!    also compacts the log region and shrinks the files on disk.
//!
//! `tests/log_lifecycle.rs` pins all three properties; the crash sweeps in
//! `tests/engine_recovery.rs` land crash points before, during and after the
//! truncation-marker writes and verify no acked write is ever lost.
//!
//! ## Elastic shard management
//!
//! Boundaries picked from a build-time key sample go stale under append-heavy
//! or skew-shifting traffic. The [`rebalance`] module keeps them live: a load
//! monitor (per-shard routed ops + OPQ queue pressure, also surfaced in
//! [`ShardSnapshot`]), a split/merge policy ([`rebalance::plan`]) and a
//! migration executor that moves a leaf region between adjacent shards as an
//! epoch-logged, crash-recoverable operation — `MigrateBegin{src,dst,range}`
//! forced first, region copies bracketed in both shards' WALs, then the
//! boundary-swap `MigrateCommit`. Reads and writes keep flowing throughout
//! (the moving range is dual-resolved, old shard authoritative until commit),
//! and recovery rolls an uncommitted migration back on both shards. Drive it
//! with [`ShardedPioEngine::rebalance_once`] or let the maintenance worker
//! tick it via [`RebalanceConfig::auto`]; knobs live in
//! [`EngineConfig::rebalance`] and are validated with the rest of the
//! configuration. See the [`rebalance`] module docs for the lifecycle diagram.
//!
//! ## Transient-fault tolerance
//!
//! Every shard queue — store, WAL, and the engine epoch log — is wrapped in
//! [`pio::ResilientIo`]: transient failures are retried with deterministic
//! exponential backoff, bounded by [`EngineConfig::retry_limit`] and the
//! per-ticket budget [`EngineConfig::io_deadline_us`] (backoff is *accounted*
//! into simulated latency, never slept). Page checksums are verified on every
//! device fetch, and the maintenance worker re-verifies a bounded slice of
//! each shard's pages per [`EngineConfig::scrub_interval_ms`] tick, healing
//! persistent rot from pooled copies that still verify. Three consecutive
//! device-class failures open a shard's **health breaker** — writes are
//! rejected with a clean retryable error, reads still try the caches — and
//! the next maintenance probe closes it once the device answers again. The
//! service front end adds per-request deadlines
//! ([`EngineConfig::request_deadline_ms`]) and bounded-admission load
//! shedding ([`EngineConfig::admission_queue_limit`]). Observability:
//! [`EngineStats::io_retries`], [`EngineStats::io_give_ups`],
//! [`EngineStats::integrity`], [`EngineStats::degraded_shards`],
//! [`EngineStats::breaker_opens`] / [`EngineStats::breaker_closes`].
//!
//! ## Quick example
//!
//! ```
//! use engine::{EngineConfig, ShardedPioEngine};
//! use pio_btree::PioConfig;
//! use ssd_sim::DeviceProfile;
//!
//! let config = EngineConfig::builder()
//!     .shards(4)
//!     .profile(DeviceProfile::P300)
//!     .base(PioConfig::builder().page_size(2048).pool_pages(512).build())
//!     .build();
//! let entries: Vec<(u64, u64)> = (0..10_000).map(|k| (k, k * 10)).collect();
//! let engine = ShardedPioEngine::bulk_load(config, &entries).unwrap();
//! assert_eq!(engine.search(1234).unwrap(), Some(12340));
//! let hits = engine.multi_search(&[1, 9_999, 20_000]).unwrap();
//! assert_eq!(hits, vec![Some(10), Some(99_990), None]);
//! let stats = engine.stats();
//! assert!(stats.scheduled_io_us <= stats.total_io_us);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod config;
pub mod epoch;
mod maintenance;
pub mod rebalance;
mod scheduler;
pub mod sharded;
pub mod stats;
pub mod target;
pub mod topology;

pub use builder::EngineBuilder;
pub use config::{EngineConfig, EngineConfigBuilder, RebalanceConfig};
pub use epoch::{EngineRecoveryReport, EpochAnalysis, EpochLog, EpochRecord, EpochState};
pub use rebalance::{MoveKind, RebalanceOutcome, RebalancePlan, ShardLoad};
pub use sharded::{boundaries_from_sample, ShardedPioEngine};
pub use stats::{EngineStats, ShardSnapshot};
pub use target::TreeTarget;
pub use topology::{
    DevicePerShard, EngineBackends, EngineManifest, ProvisionMode, RealFiles, ShardMeta, ShardProvisioner, SharedDevice,
};
