//! [`workload::IndexTarget`] implementations, so the workload generators can drive
//! the engine (and a single PIO B-tree, for comparisons) directly.

use crate::sharded::ShardedPioEngine;
use pio::IoError;
use pio_btree::PioBTree;
use workload::IndexTarget;

impl IndexTarget for ShardedPioEngine {
    type Error = IoError;

    fn insert(&mut self, key: u64, value: u64) -> Result<(), IoError> {
        ShardedPioEngine::insert(self, key, value)
    }

    fn delete(&mut self, key: u64) -> Result<(), IoError> {
        ShardedPioEngine::delete(self, key)
    }

    fn update(&mut self, key: u64, value: u64) -> Result<(), IoError> {
        ShardedPioEngine::update(self, key, value)
    }

    fn search(&mut self, key: u64) -> Result<Option<u64>, IoError> {
        ShardedPioEngine::search(self, key)
    }

    fn range_search(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, u64)>, IoError> {
        ShardedPioEngine::range_search(self, lo, hi)
    }

    fn multi_search(&mut self, keys: &[u64]) -> Result<Vec<Option<u64>>, IoError> {
        ShardedPioEngine::multi_search(self, keys)
    }
}

/// Newtype making a plain [`PioBTree`] drivable by the workload replayer (the
/// orphan rule prevents implementing `workload::IndexTarget` for `PioBTree` in
/// either of its home crates without introducing a dependency cycle).
pub struct TreeTarget(pub PioBTree);

impl IndexTarget for TreeTarget {
    type Error = IoError;

    fn insert(&mut self, key: u64, value: u64) -> Result<(), IoError> {
        self.0.insert(key, value)
    }

    fn delete(&mut self, key: u64) -> Result<(), IoError> {
        self.0.delete(key)
    }

    fn update(&mut self, key: u64, value: u64) -> Result<(), IoError> {
        self.0.update(key, value)
    }

    fn search(&mut self, key: u64) -> Result<Option<u64>, IoError> {
        self.0.search(key)
    }

    fn range_search(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, u64)>, IoError> {
        self.0.range_search(lo, hi)
    }

    fn multi_search(&mut self, keys: &[u64]) -> Result<Vec<Option<u64>>, IoError> {
        self.0.multi_search(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use pio_btree::PioConfig;
    use ssd_sim::DeviceProfile;
    use workload::{replay, KeyDistribution, MixSpec, OperationGenerator};

    #[test]
    fn generated_workload_drives_the_engine() {
        let config = EngineConfig::builder()
            .shards(4)
            .profile(DeviceProfile::F120)
            .shard_capacity_bytes(1 << 30)
            .base(
                PioConfig::builder()
                    .page_size(2048)
                    .leaf_segments(2)
                    .opq_pages(4)
                    .pio_max(16)
                    .speriod(50)
                    .bcnt(100)
                    .pool_pages(256)
                    .build(),
            )
            .build();
        let mut engine = ShardedPioEngine::create(config, &(0..10_000u64).collect::<Vec<_>>()).unwrap();
        let mix = MixSpec {
            insert: 0.5,
            delete: 0.05,
            update: 0.05,
            range_search: 0.05,
            range_span: 50,
        };
        let mut generator = OperationGenerator::new(7, 10_000, KeyDistribution::Uniform, mix);
        let ops = generator.generate(3_000);
        let stats = replay(&mut engine, &ops, 32).unwrap();
        assert_eq!(stats.total_ops(), 3_000);
        assert!(stats.inserts > 1_000);
        assert!(stats.search_batches > 0);
        engine.checkpoint().unwrap();
        engine.check_invariants().unwrap();
    }
}
