//! The sharded PIO engine: key-range partitioning and the cross-shard parallel
//! request scheduler.
//!
//! ## Partitioning
//!
//! The key space is cut into `N` contiguous ranges by `N − 1` boundary keys chosen
//! from a key sample at [`ShardedPioEngine::create`] / [`ShardedPioEngine::bulk_load`]
//! time (quantiles of the sample, topped up with uniform cuts if the sample is too
//! small or skewed). Shard `i` owns `[bounds[i-1], bounds[i])`; the last shard also
//! owns `Key::MAX`. Every shard is a complete [`PioBTree`] with its own
//! [`storage::CachedStore`], operation queue and (optional) WAL — the engine-level
//! analogue of the paper's one-index-per-file layout, which Figure 4(b) shows
//! behaves like independent psync streams.
//!
//! ## Scheduling
//!
//! Batch entry points (`multi_search`, `insert_batch`, `range_search`,
//! `checkpoint`, `maintain_once`) split their work by shard and hand it to a
//! **persistent worker pool**: one long-lived thread per shard, fed over channels
//! by a single event-driven scheduler thread that submits each shard's task and
//! reaps completions as they land (the `scheduler` module). Batched calls spawn
//! **zero** threads. Because the stores simulate time rather than sleep,
//! cross-shard overlap is accounted explicitly: when a call's last completion
//! lands, the scheduler adds the **maximum** of the participating shards'
//! simulated I/O deltas to the schedule makespan
//! ([`crate::EngineStats::scheduled_io_us`]), while the sum of all deltas remains
//! visible as `total_io_us`. The ratio of the two is the measured overlap win.
//! Results are always collected by shard index — never by completion order — so
//! fan-outs are deterministic.

use crate::builder::EngineBuilder;
use crate::config::EngineConfig;
use crate::epoch::{EngineRecoveryReport, EpochLog, MigrationSpec};
use crate::maintenance::MaintenanceWorker;
use crate::scheduler::{SchedMsg, SchedulerPool, ShardTask, TaskOutput};
use crate::stats::{EngineStats, ShardSnapshot};
use crate::topology::{EngineBackends, EngineManifest, ShardMeta, ShardProvisioner};
use btree::{Key, Value};
use parking_lot::{Mutex, RwLock};
use pio::{IoQueue, IoResult, ParallelIo};
use pio_btree::{OpEntry, OpKind, PioBTree, PioConfig, PioStats};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use storage::{CachedStore, LeafCacheStats, Lsn, PageStore, Wal, WritePolicy};

/// One key-range shard: an independent PIO B-tree. Its key range is *not*
/// stored here — ranges live in the engine's [`RoutingState`] so a boundary
/// migration can move them without touching the shard itself.
pub(crate) struct Shard {
    tree: Mutex<PioBTree>,
    /// Point-request sub-batches this shard received through the batched entry
    /// points (`multi_search` / `insert_batch`) over the engine's lifetime.
    batched_calls: AtomicU64,
    /// Point requests those sub-batches carried in total; `batched_ops /
    /// batched_calls` is the shard's average batch occupancy — the engine-level
    /// ground truth for the service front end's occupancy metric.
    batched_ops: AtomicU64,
    /// Requests routed to this shard since the last [`EngineStats`] snapshot
    /// (reset by `stats()`): the per-window load signal.
    routed_since: AtomicU64,
    /// Requests routed to this shard over the engine's lifetime (monotonic):
    /// the rebalance monitor diffs this against its own baseline, so its
    /// windows are independent of how often anyone calls `stats()`.
    routed_total: AtomicU64,
    /// Peak OPQ fill (percent of capacity) observed after any write since the
    /// last [`EngineStats`] snapshot (reset by `stats()`): the queue-pressure
    /// signal. Behind an `Arc` so batched-write task closures can update it
    /// from the worker threads.
    queue_peak_pct: Arc<AtomicU64>,
    /// Health breaker of this shard's device (see [`ShardHealth`]).
    health: ShardHealth,
}

/// Consecutive device failures that trip a shard's breaker open. Transient
/// errors below this are already being absorbed by the retry wrapper — a run
/// of failures that *survives* retrying means the device is sick, not noisy.
const BREAKER_THRESHOLD: u64 = 3;

/// Circuit breaker over one shard's device health. Device-class failures
/// (OS errors, worker crashes, checksum corruption) on the shard's foreground
/// path feed a consecutive-failure counter; at [`BREAKER_THRESHOLD`] the
/// breaker opens and the shard is *degraded*: writes are rejected immediately
/// with a retryable error (instead of queueing work onto a sick device), reads
/// are still attempted — the inner tier, buffer pool and leaf cache keep
/// serving whatever they hold. The background maintenance worker probes a
/// degraded shard's device each sweep and closes the breaker when a probe
/// succeeds.
#[derive(Default)]
pub(crate) struct ShardHealth {
    /// Device-class failures observed in a row (reset by any success).
    consecutive_failures: AtomicU64,
    /// Whether the breaker is open (shard degraded).
    open: std::sync::atomic::AtomicBool,
    /// Times the breaker opened, lifetime.
    opens: AtomicU64,
    /// Times a maintenance probe closed it, lifetime.
    closes: AtomicU64,
    /// Checksum-corruption errors observed on this shard, lifetime.
    corruption_errors: AtomicU64,
}

impl ShardHealth {
    fn is_open(&self) -> bool {
        self.open.load(Ordering::Relaxed)
    }

    /// Whether `error` indicts the device (as opposed to a caller mistake like
    /// an out-of-bounds request, which says nothing about device health).
    fn indicts_device(error: &pio::IoError) -> bool {
        matches!(
            error,
            pio::IoError::Os(_) | pio::IoError::WorkerFailed(_) | pio::IoError::Corruption { .. }
        )
    }

    /// Feeds one operation outcome into the breaker. Successes heal the
    /// consecutive-failure count; device-class failures grow it and trip the
    /// breaker at the threshold.
    fn observe<T>(&self, result: &IoResult<T>) {
        match result {
            Ok(_) => {
                self.consecutive_failures.store(0, Ordering::Relaxed);
            }
            Err(e) if Self::indicts_device(e) => {
                if matches!(e, pio::IoError::Corruption { .. }) {
                    self.corruption_errors.fetch_add(1, Ordering::Relaxed);
                }
                let run = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
                if run >= BREAKER_THRESHOLD && !self.open.swap(true, Ordering::Relaxed) {
                    self.opens.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {}
        }
    }

    /// Closes the breaker after a successful probe.
    fn close(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        if self.open.swap(false, Ordering::Relaxed) {
            self.closes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The retryable rejection a degraded shard answers writes with.
    fn rejection(shard: usize) -> pio::IoError {
        pio::IoError::Os(std::io::Error::new(
            std::io::ErrorKind::WouldBlock,
            format!("shard {shard} is degraded (circuit breaker open); retry after the next maintenance probe"),
        ))
    }
}

impl Shard {
    fn new(tree: PioBTree) -> Self {
        Self {
            tree: Mutex::new(tree),
            batched_calls: AtomicU64::new(0),
            batched_ops: AtomicU64::new(0),
            routed_since: AtomicU64::new(0),
            routed_total: AtomicU64::new(0),
            queue_peak_pct: Arc::new(AtomicU64::new(0)),
            health: ShardHealth::default(),
        }
    }

    /// Counts one point-request sub-batch of `ops` requests landing on this shard.
    fn note_batch(&self, ops: usize) {
        self.batched_calls.fetch_add(1, Ordering::Relaxed);
        self.batched_ops.fetch_add(ops as u64, Ordering::Relaxed);
        self.note_routed(ops as u64);
    }

    /// Counts `ops` requests routed to this shard (window + lifetime signals).
    fn note_routed(&self, ops: u64) {
        self.routed_since.fetch_add(ops, Ordering::Relaxed);
        self.routed_total.fetch_add(ops, Ordering::Relaxed);
    }
}

/// Folds the OPQ fill after a write into the shard's queue-pressure peak.
fn note_queue_peak(peak: &AtomicU64, tree: &PioBTree) {
    let pct = (tree.opq_len() * 100 / tree.opq_capacity().max(1)) as u64;
    peak.fetch_max(pct, Ordering::Relaxed);
}

/// A boundary migration in flight (installed in [`RoutingState`] for its whole
/// duration). Until the commit swaps the boundary, the routing table is
/// unchanged — the source shard stays authoritative for the moving range — and
/// every write that lands in the captured range is also appended to `dirty` so
/// the committed state includes writes that raced the region copy.
pub(crate) struct ActiveMigration {
    /// The shard losing keys.
    src: usize,
    /// The adjacent shard gaining them.
    dst: usize,
    /// Captured range (the source shard's full range at install time): writes
    /// inside it are mirrored into `dirty`.
    lo: Key,
    hi: Key,
    /// Ordered log of writes that hit the captured range after the snapshot.
    /// Pushed under the owning shard's tree lock, so its order matches the
    /// order the writes applied in; drained under the routing write lock.
    dirty: Arc<Mutex<Vec<OpEntry>>>,
}

/// The live routing table: boundary keys plus the (at most one) migration in
/// flight. Every request path holds the read half for its whole operation, so
/// acquiring the write half is a barrier that drains in-flight requests — the
/// commit's boundary swap can never race a request routed under the old
/// bounds.
pub(crate) struct RoutingState {
    /// Boundary keys; shard `i` owns keys `< bounds[i]` (and `≥ bounds[i-1]`).
    /// Non-decreasing: two equal adjacent bounds denote an empty (merged-away)
    /// shard, which `partition_point` routing handles naturally.
    bounds: Vec<Key>,
    /// The migration in flight, if any.
    migration: Option<ActiveMigration>,
    /// Bumped on every boundary change (diagnostics; lets front ends detect
    /// topology movement cheaply).
    version: u64,
}

/// The engine side of the two-phase flush-epoch protocol (present only when the
/// per-shard WALs are enabled).
pub(crate) struct EpochCoordinator {
    log: EpochLog,
    /// Next epoch id to assign (continued past the log's maximum on recovery).
    next_epoch: AtomicU64,
    /// `Begin`-record LSN of every epoch that is still undecided (begun but not
    /// yet committed or abandoned). Checkpoint truncation of the engine log may
    /// not pass the minimum of these pins: dropping an undecided epoch's
    /// `Begin` would make recovery treat its shard-side brackets as orphans.
    /// Registered *before* `EpochLog::begin` forces the record and removed
    /// after the commit force, so the pin conservatively covers the whole
    /// undecided window.
    in_flight: Mutex<std::collections::BTreeMap<u64, Lsn>>,
}

impl EpochCoordinator {
    /// The LSN below which the engine log may be truncated without losing an
    /// undecided epoch, given a candidate checkpoint cut `upto`.
    fn truncation_floor(&self, upto: Lsn) -> Lsn {
        let pins = self.in_flight.lock();
        // Minimum pinned LSN, not the first map entry: epoch ids are allocated
        // outside this lock, so id order need not match Begin-LSN order.
        match pins.values().min() {
            Some(&pin) => upto.min(pin),
            None => upto,
        }
    }
}

/// Shared state between the engine handle, the per-shard workers, the scheduler
/// and the background maintenance worker.
pub(crate) struct EngineInner {
    shards: Vec<Shard>,
    /// The live routing table (bounds + in-flight migration); see
    /// [`RoutingState`] for the locking discipline.
    routing: RwLock<RoutingState>,
    config: EngineConfig,
    /// The storage topology the shards were provisioned on (manifest persistence
    /// for durable topologies; no-ops for the simulated ones).
    topology: Box<dyn ShardProvisioner>,
    /// The last manifest snapshot handed to the topology, so
    /// [`EngineInner::sync_manifest`] only persists actual changes.
    manifest: Mutex<Option<EngineManifest>>,
    /// Dirty-marker state: whether the topology's durable marker is raised,
    /// plus the counters that let a checkpoint prove no mutation raced its
    /// clear (see [`EngineInner::begin_mutation`] and
    /// [`EngineInner::checkpoint`]).
    dirty: Mutex<DirtyState>,
    /// Cross-shard batch-atomicity coordinator (`None` without WALs).
    epoch: Option<EpochCoordinator>,
    /// Epochs committed over the engine's lifetime.
    committed_epochs: AtomicU64,
    /// Uncommitted-but-fully-acked epochs completed by `recover`.
    recovered_epochs: AtomicU64,
    /// Uncommitted epochs discarded on every shard by `recover`.
    discarded_epochs: AtomicU64,
    /// Accumulated schedule makespan in µs (see the module docs).
    scheduled_us: Mutex<f64>,
    /// Sender into the scheduler's event loop (installed right after the pool is
    /// spawned during engine construction).
    sched_tx: Mutex<Option<Sender<SchedMsg>>>,
    /// Fan-outs dispatched through the scheduler over the engine's lifetime.
    scheduled_batches: AtomicU64,
    /// Splits (hot shard cut at a median key) completed over the lifetime.
    splits: AtomicU64,
    /// Merges (cold shard emptied into a neighbour) completed over the lifetime.
    merges: AtomicU64,
    /// Entries moved between shards by migrations over the lifetime.
    migrated_keys: AtomicU64,
    /// Committed migrations whose boundary was re-applied by `recover`.
    committed_migrations: AtomicU64,
    /// Uncommitted migrations rolled back by `recover`.
    rolled_back_migrations: AtomicU64,
    /// The rebalance monitor's per-shard `routed_total` baseline: the window a
    /// policy decision sees is the delta since the previous decision.
    rebalance_baseline: Mutex<Vec<u64>>,
    /// Checkpoints completed over the engine's lifetime.
    checkpoints: AtomicU64,
    /// Logical log bytes dropped by checkpoint-anchored truncation over the
    /// lifetime (shard WALs + engine epoch log).
    truncated_bytes: AtomicU64,
    /// Log records scanned by the most recent `recover` (shard WAL analysis
    /// passes plus the epoch-log scan) — the bounded-recovery observable.
    recovery_replayed_records: AtomicU64,
    /// Maintenance passes that flushed at least one shard.
    maintenance_flushes: AtomicU64,
    /// Background maintenance passes that returned an I/O error.
    maintenance_errors: AtomicU64,
    /// Message of the most recent background maintenance error.
    last_maintenance_error: Mutex<Option<String>>,
}

impl EngineInner {
    /// Records a background maintenance failure so it surfaces through
    /// [`EngineStats`] instead of disappearing in the worker thread.
    pub(crate) fn note_maintenance_error(&self, error: &pio::IoError) {
        self.maintenance_errors.fetch_add(1, Ordering::Relaxed);
        *self.last_maintenance_error.lock() = Some(error.to_string());
    }

    /// Number of shards (used by the scheduler to size its worker pool).
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The lock guarding one shard's tree (workers lock it to run their task).
    pub(crate) fn shard_tree(&self, shard: usize) -> &Mutex<PioBTree> {
        &self.shards[shard].tree
    }

    /// A handle into the scheduler's event loop.
    pub(crate) fn scheduler(&self) -> Sender<SchedMsg> {
        self.sched_tx
            .lock()
            .clone()
            .expect("scheduler pool is attached during engine construction")
    }

    /// Counts one completed fan-out (called by the scheduler).
    pub(crate) fn note_scheduled_batch(&self) {
        self.scheduled_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// The current manifest snapshot: shard boundaries plus each shard's
    /// superblock (root, height, allocation frontier).
    fn manifest_snapshot(&self) -> EngineManifest {
        EngineManifest {
            shards: self.shards.len(),
            page_size: self.config.base.page_size,
            wal_enabled: self.config.base.wal_enabled,
            bounds: self.routing.read().bounds.clone(),
            shard_meta: self
                .shards
                .iter()
                .map(|s| {
                    let tree = s.tree.lock();
                    ShardMeta {
                        root: tree.root_page(),
                        height: tree.height() as u64,
                        high_water: tree.store().store().high_water_pages(),
                    }
                })
                .collect(),
        }
    }

    /// Opens a mutation bracket: raises the durable dirty marker (only the
    /// first mutation after a checkpoint pays the topology call) and counts the
    /// mutation, so a concurrent [`EngineInner::checkpoint`] can prove whether
    /// its clear raced a writer. The returned guard closes the bracket on drop.
    pub(crate) fn begin_mutation(&self) -> IoResult<MutationGuard<'_>> {
        let mut state = self.dirty.lock();
        state.begun += 1;
        state.in_flight += 1;
        if !state.marked {
            if let Err(e) = self.topology.set_dirty(true) {
                state.in_flight -= 1;
                return Err(e);
            }
            state.marked = true;
        }
        drop(state);
        Ok(MutationGuard { inner: self })
    }

    /// Persists the manifest through the topology when it changed since the
    /// last sync. Called after creation, checkpoints, maintenance flushes and
    /// recovery — the points where shard superblocks move durably. Roots moved
    /// by foreground flushes *between* syncs are covered by the WAL's
    /// `FlushRoot`/`FlushAlloc` roll-forward at the next recovery; without a
    /// WAL the manifest is only as fresh as the last checkpoint (see
    /// [`crate::RealFiles`]).
    pub(crate) fn sync_manifest(&self) -> IoResult<()> {
        // Snapshot under the manifest lock: two concurrent syncs (checkpoint +
        // background maintenance) must not save an older snapshot after a newer
        // one. No other path acquires shard locks after the manifest lock, so
        // the ordering is cycle-free.
        let mut cached = self.manifest.lock();
        let snapshot = self.manifest_snapshot();
        if cached.as_ref() != Some(&snapshot) {
            self.topology.save_manifest(&snapshot)?;
            *cached = Some(snapshot);
        }
        Ok(())
    }
}

/// A key-range-sharded PIO B-tree engine with a cross-shard parallel scheduler.
///
/// All operations take `&self`; per-shard trees are behind their own mutexes, so
/// client threads operating on different shards proceed concurrently (unlike
/// [`pio_btree::ConcurrentPioBTree`], whose single lock serialises every update).
/// Batched calls are dispatched through a persistent per-shard worker pool driven
/// by one event-driven scheduler thread — no threads are spawned per call.
pub struct ShardedPioEngine {
    // Field order is drop order: the maintenance worker stops first (it issues
    // fan-outs), then the scheduler pool (which joins the shard workers), and only
    // then the shared state they all reference.
    worker: Option<MaintenanceWorker>,
    scheduler: SchedulerPool,
    inner: Arc<EngineInner>,
}

impl std::fmt::Debug for ShardedPioEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedPioEngine")
            .field("shards", &self.inner.shards.len())
            .field("bounds", &self.inner.routing.read().bounds)
            .field("scheduler", &self.scheduler.is_running())
            .field("background_maintenance", &self.worker.is_some())
            .finish()
    }
}

/// Chooses `shards − 1` strictly increasing boundary keys: quantiles of `sample`,
/// topped up with uniform cuts of the remaining key space when the sample has too
/// few distinct keys.
pub fn boundaries_from_sample(sample: &[Key], shards: usize) -> Vec<Key> {
    if shards <= 1 {
        return Vec::new();
    }
    let mut sorted = sample.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    boundaries_from_sorted(sorted.len(), |i| sorted[i], shards)
}

/// Quantile + top-up boundary selection over an already sorted, duplicate-free
/// sequence accessed through `key_at` — the zero-copy path used by
/// [`ShardedPioEngine::bulk_load`], whose entries are sorted by contract.
pub(crate) fn boundaries_from_sorted(len: usize, key_at: impl Fn(usize) -> Key, shards: usize) -> Vec<Key> {
    if shards <= 1 {
        return Vec::new();
    }
    let mut bounds: Vec<Key> = Vec::with_capacity(shards - 1);
    if len > 0 {
        for i in 1..shards {
            let idx = (i * len / shards).min(len - 1);
            let candidate = key_at(idx);
            if bounds.last().is_none_or(|&prev| candidate > prev) && candidate > 0 {
                bounds.push(candidate);
            }
        }
    }
    // Top up by repeatedly cutting the largest remaining gap in half (with 0 and
    // `Key::MAX` as sentinels), so the chooser stays total even when the sample
    // clusters at either end of the key space.
    while bounds.len() < shards - 1 {
        let mut best: Option<(Key, usize, Key)> = None; // (gap, insert position, new cut)
        let mut prev = 0;
        for (i, &b) in bounds.iter().chain(std::iter::once(&Key::MAX)).enumerate() {
            let gap = b - prev;
            // A cut strictly between `prev` and `b` needs a gap of at least 2.
            if gap >= 2 && best.is_none_or(|(g, _, _)| gap > g) {
                best = Some((gap, i, prev + gap / 2));
            }
            prev = b;
        }
        let Some((_, pos, cut)) = best else {
            // The key space has fewer representable cut points than requested
            // shards (only possible for absurd shard counts).
            break;
        };
        bounds.insert(pos, cut);
    }
    bounds
}

/// State of the durable dirty marker (see [`crate::ShardProvisioner::set_dirty`]).
#[derive(Debug, Default)]
struct DirtyState {
    /// Whether the durable marker is currently raised.
    marked: bool,
    /// Mutations that have *begun* over the engine's lifetime (monotonic).
    begun: u64,
    /// Mutations begun but not yet finished.
    in_flight: u64,
}

/// RAII half of a mutation bracket: decrements `in_flight` when the mutation
/// finishes (success or error alike).
pub(crate) struct MutationGuard<'a> {
    inner: &'a EngineInner,
}

impl Drop for MutationGuard<'_> {
    fn drop(&mut self) {
        self.inner.dirty.lock().in_flight -= 1;
    }
}

/// The key range `[lo, hi)` of shard `i` under `bounds` (`hi == Key::MAX` for
/// the last shard, which also owns `Key::MAX` itself).
pub(crate) fn shard_range(bounds: &[Key], i: usize, shards: usize) -> (Key, Key) {
    let lo = if i == 0 { 0 } else { bounds[i - 1] };
    let hi = if i == shards - 1 { Key::MAX } else { bounds[i] };
    (lo, hi)
}

/// The shard index owning `key` under `bounds`. Free function so request paths
/// already holding the routing lock never re-enter it.
fn shard_of(bounds: &[Key], key: Key) -> usize {
    bounds.partition_point(|&b| b <= key)
}

/// Builds a fresh cached store over a provisioned backend. With a retry policy
/// the backend is wrapped in [`pio::ResilientIo`], so transient device errors
/// are retried with backoff below the store (backoff is charged into simulated
/// latency, never slept — the engine's backends simulate time).
fn build_store(cfg: &PioConfig, retry: Option<pio::RetryPolicy>, store_io: Arc<dyn IoQueue>) -> Arc<CachedStore> {
    let store_io: Arc<dyn IoQueue> = match retry {
        Some(policy) => Arc::new(pio::ResilientIo::new(store_io, policy)),
        None => store_io,
    };
    Arc::new(CachedStore::new(
        PageStore::new(store_io, cfg.page_size),
        cfg.pool_pages,
        WritePolicy::WriteThrough,
    ))
}

/// Attaches a WAL over a provisioned backend: the log gets its own queue so log
/// appends never interleave with index-node I/O inside one psync call. The same
/// retry policy that guards the store wraps the log queue — a dropped WAL
/// append would fail an otherwise healthy flush epoch.
fn attach_shard_wal(tree: &mut PioBTree, cfg: &PioConfig, retry: Option<pio::RetryPolicy>, wal_io: Arc<dyn IoQueue>) {
    let wal_io: Arc<dyn IoQueue> = match retry {
        Some(policy) => Arc::new(pio::ResilientIo::new(wal_io, policy)),
        None => wal_io,
    };
    tree.attach_wal(Wal::new(Arc::new(wal_io) as Arc<dyn ParallelIo>, 0, cfg.page_size));
}

/// Bulk loads one shard tree over its provisioned store backend (its own
/// "index file" — a simulated device, a partition of a shared device, or a
/// real file, per the topology).
fn build_shard_tree(
    cfg: &PioConfig,
    retry: Option<pio::RetryPolicy>,
    entries: &[(Key, Value)],
    store_io: Arc<dyn IoQueue>,
    wal_io: Option<Arc<dyn IoQueue>>,
) -> IoResult<PioBTree> {
    let mut tree = PioBTree::bulk_load(build_store(cfg, retry, store_io), entries, cfg.clone())?;
    if cfg.wal_enabled {
        let wal_io = wal_io.expect("validated: one WAL backend per shard when the WAL is enabled");
        attach_shard_wal(&mut tree, cfg, retry, wal_io);
    }
    Ok(tree)
}

impl ShardedPioEngine {
    // ------------------------------------------------------------------ creation --

    /// Creates an empty engine on the default [`crate::DevicePerShard`] topology.
    /// `key_sample` guides the shard boundaries (pass the expected key
    /// population, or `&[]` for uniform cuts of the full `u64` space). Thin
    /// delegation to [`EngineBuilder`]; use the builder directly to choose a
    /// topology.
    pub fn create(config: EngineConfig, key_sample: &[Key]) -> IoResult<Self> {
        EngineBuilder::new(config).key_sample(key_sample).build()
    }

    /// Bulk loads `entries` (sorted, duplicate-free) into a fresh engine on the
    /// default [`crate::DevicePerShard`] topology, using the entry keys
    /// themselves as the boundary sample (read in place — no key copy). Thin
    /// delegation to [`EngineBuilder`]; use the builder directly to choose a
    /// topology.
    pub fn bulk_load(config: EngineConfig, entries: &[(Key, Value)]) -> IoResult<Self> {
        EngineBuilder::new(config).entries(entries).build()
    }

    pub(crate) fn check_sorted(entries: &[(Key, Value)]) {
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk_load requires sorted, duplicate-free input"
        );
    }

    /// The provisioned backends must match the configuration before anything is
    /// built on them.
    fn validate_backends(config: &EngineConfig, backends: &EngineBackends) -> IoResult<()> {
        let wal = config.base.wal_enabled;
        if backends.shard_stores.len() != config.shards
            || (wal && (backends.shard_wals.len() != config.shards || backends.engine_wal.is_none()))
        {
            return Err(pio::IoError::InvalidConfig(format!(
                "the topology must supply one store{} backend per shard ({} shards){}",
                if wal { " and one WAL" } else { "" },
                config.shards,
                if wal { " plus the engine epoch-log backend" } else { "" },
            )));
        }
        Ok(())
    }

    /// The cross-shard epoch coordinator exists exactly when the shards log:
    /// without per-shard WALs there is nothing to make atomic.
    fn build_epoch_coordinator(
        shard_cfg: &PioConfig,
        retry: Option<pio::RetryPolicy>,
        backends: &mut EngineBackends,
    ) -> Option<EpochCoordinator> {
        shard_cfg.wal_enabled.then(|| {
            let engine_wal = backends
                .engine_wal
                .take()
                .expect("validated: engine WAL backend present");
            // The epoch log anchors cross-shard atomicity; it gets the same
            // transient-error shielding as every other engine queue.
            let engine_wal: Arc<dyn IoQueue> = match retry {
                Some(policy) => Arc::new(pio::ResilientIo::new(engine_wal, policy)),
                None => engine_wal,
            };
            let wal_io: Arc<dyn ParallelIo> = Arc::new(engine_wal);
            EpochCoordinator {
                log: EpochLog::new(Wal::new(wal_io, 0, shard_cfg.page_size)),
                next_epoch: AtomicU64::new(1),
                in_flight: Mutex::new(std::collections::BTreeMap::new()),
            }
        })
    }

    /// Assembles a fresh engine over provisioned backends: splits the (sorted)
    /// entries at the boundary keys, bulk loads every shard, and persists the
    /// initial manifest snapshot. Called by [`EngineBuilder::build`].
    pub(crate) fn assemble(
        config: EngineConfig,
        entries: &[(Key, Value)],
        bounds: Vec<Key>,
        mut backends: EngineBackends,
        topology: Box<dyn ShardProvisioner>,
    ) -> IoResult<Self> {
        if bounds.len() != config.shards - 1 {
            return Err(pio::IoError::InvalidConfig(format!(
                "key space cannot be cut into {} shards",
                config.shards
            )));
        }
        Self::validate_backends(&config, &backends)?;
        let shard_cfg = config.shard_config();

        // Split the (sorted) entries at the boundary keys.
        let mut shards = Vec::with_capacity(config.shards);
        let mut build_makespan_us = 0.0f64;
        let mut rest = entries;
        for i in 0..config.shards {
            let (_, hi) = shard_range(&bounds, i, config.shards);
            let cut = if i == config.shards - 1 {
                rest.len()
            } else {
                rest.partition_point(|&(k, _)| k < hi)
            };
            let (mine, others) = rest.split_at(cut);
            rest = others;
            let tree = build_shard_tree(
                &shard_cfg,
                config.retry_policy(),
                mine,
                Arc::clone(&backends.shard_stores[i]),
                backends.shard_wals.get(i).cloned(),
            )?;
            // Shard loads run as concurrent streams like every other engine
            // operation, so the schedule is charged the slowest shard's build.
            build_makespan_us = build_makespan_us.max(tree.io_elapsed_us());
            shards.push(Shard::new(tree));
        }
        let epoch = Self::build_epoch_coordinator(&shard_cfg, config.retry_policy(), &mut backends);
        // A freshly built engine is clean: clear any stale marker left in the
        // topology's durable state by a previous incarnation.
        topology.set_dirty(false)?;
        let engine = Self::finish(config, shards, bounds, epoch, build_makespan_us, topology, None, false);
        engine.inner.sync_manifest()?;
        Ok(engine)
    }

    /// Reopens a persisted engine over its existing storage: every shard's
    /// superblock snapshot (root, height, allocation frontier) comes from the
    /// manifest, the volatile state starts empty — exactly as after a crash —
    /// and the caller ([`EngineBuilder::recover`]) runs
    /// [`ShardedPioEngine::recover`] next to replay the WALs.
    /// Checks a loaded manifest against the configuration (and its own internal
    /// shape — a custom provisioner's `load_manifest` can hand back anything).
    /// Called by [`EngineBuilder::recover`] *before* provisioning, so a
    /// mismatched recover attempt never touches the topology's storage.
    pub(crate) fn validate_manifest(config: &EngineConfig, manifest: &EngineManifest) -> IoResult<()> {
        if manifest.shards != config.shards
            || manifest.page_size != config.base.page_size
            || manifest.wal_enabled != config.base.wal_enabled
        {
            return Err(pio::IoError::InvalidConfig(format!(
                "manifest (shards {}, page_size {}, wal {}) does not match the configuration \
                 (shards {}, page_size {}, wal {})",
                manifest.shards,
                manifest.page_size,
                manifest.wal_enabled,
                config.shards,
                config.base.page_size,
                config.base.wal_enabled,
            )));
        }
        if manifest.bounds.len() + 1 != manifest.shards || manifest.shard_meta.len() != manifest.shards {
            return Err(pio::IoError::InvalidConfig(format!(
                "malformed manifest: {} bounds and {} shard snapshots for {} shards",
                manifest.bounds.len(),
                manifest.shard_meta.len(),
                manifest.shards,
            )));
        }
        Ok(())
    }

    pub(crate) fn reopen(
        config: EngineConfig,
        manifest: EngineManifest,
        backends: EngineBackends,
        topology: Box<dyn ShardProvisioner>,
    ) -> IoResult<Self> {
        Self::validate_manifest(&config, &manifest)?;
        Self::validate_backends(&config, &backends)?;
        let shard_cfg = config.shard_config();
        let mut backends = backends;
        let bounds = manifest.bounds.clone();
        let mut shards = Vec::with_capacity(config.shards);
        for (i, meta) in manifest.shard_meta.iter().enumerate() {
            let store = build_store(&shard_cfg, config.retry_policy(), Arc::clone(&backends.shard_stores[i]));
            store.ensure_high_water(meta.high_water);
            let mut tree = PioBTree::open(store, shard_cfg.clone(), meta.root, meta.height as usize)?;
            if shard_cfg.wal_enabled {
                attach_shard_wal(
                    &mut tree,
                    &shard_cfg,
                    config.retry_policy(),
                    Arc::clone(&backends.shard_wals[i]),
                );
            }
            shards.push(Shard::new(tree));
        }
        let epoch = Self::build_epoch_coordinator(&shard_cfg, config.retry_policy(), &mut backends);
        // Keep the durable dirty marker as-is (the WAL replay that follows does
        // not change what it means) and mirror it in memory.
        let dirty = topology.load_dirty()?;
        Ok(Self::finish(
            config,
            shards,
            bounds,
            epoch,
            0.0,
            topology,
            Some(manifest),
            dirty,
        ))
    }

    /// Shared tail of [`ShardedPioEngine::assemble`] / [`ShardedPioEngine::reopen`]:
    /// wires up the scheduler pool and the optional maintenance worker.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        config: EngineConfig,
        shards: Vec<Shard>,
        bounds: Vec<Key>,
        epoch: Option<EpochCoordinator>,
        build_makespan_us: f64,
        topology: Box<dyn ShardProvisioner>,
        manifest: Option<EngineManifest>,
        dirty: bool,
    ) -> Self {
        let shard_count = shards.len();
        let inner = Arc::new(EngineInner {
            shards,
            routing: RwLock::new(RoutingState {
                bounds,
                migration: None,
                version: 0,
            }),
            config: config.clone(),
            topology,
            manifest: Mutex::new(manifest),
            dirty: Mutex::new(DirtyState {
                marked: dirty,
                ..DirtyState::default()
            }),
            epoch,
            committed_epochs: AtomicU64::new(0),
            recovered_epochs: AtomicU64::new(0),
            discarded_epochs: AtomicU64::new(0),
            scheduled_us: Mutex::new(build_makespan_us),
            sched_tx: Mutex::new(None),
            scheduled_batches: AtomicU64::new(0),
            splits: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            migrated_keys: AtomicU64::new(0),
            committed_migrations: AtomicU64::new(0),
            rolled_back_migrations: AtomicU64::new(0),
            rebalance_baseline: Mutex::new(vec![0; shard_count]),
            checkpoints: AtomicU64::new(0),
            truncated_bytes: AtomicU64::new(0),
            recovery_replayed_records: AtomicU64::new(0),
            maintenance_flushes: AtomicU64::new(0),
            maintenance_errors: AtomicU64::new(0),
            last_maintenance_error: Mutex::new(None),
        });
        let (scheduler, sched_tx) = SchedulerPool::spawn(&inner);
        *inner.sched_tx.lock() = Some(sched_tx);
        let worker = config
            .maintenance_interval_ms
            .map(|ms| MaintenanceWorker::spawn(Arc::clone(&inner), std::time::Duration::from_millis(ms)));
        Self {
            worker,
            scheduler,
            inner,
        }
    }

    // ------------------------------------------------------------------ accessors --

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The boundary keys separating the shards (length `shards − 1`), a
    /// snapshot of the live routing table. Non-decreasing; two equal adjacent
    /// bounds denote a shard merged away to an empty range.
    pub fn boundaries(&self) -> Vec<Key> {
        self.inner.routing.read().bounds.clone()
    }

    /// Bumped on every boundary change: lets callers detect that a rebalance
    /// happened between two observations without comparing bound vectors.
    pub fn routing_version(&self) -> u64 {
        self.inner.routing.read().version
    }

    /// The shard index that owns `key` under the current boundaries. Advisory
    /// for concurrent callers: a rebalance may move the boundary right after
    /// this returns, so use it for placement hints (e.g. batch binning), not
    /// correctness — the engine's own entry points re-route internally.
    pub fn shard_for(&self, key: Key) -> usize {
        self.inner.shard_for(key)
    }

    /// A handle to the engine's shared state, for the sibling `rebalance`
    /// module's engine-level entry points.
    pub(crate) fn inner(&self) -> &Arc<EngineInner> {
        &self.inner
    }

    /// Whether a background maintenance worker is running.
    pub fn has_background_maintenance(&self) -> bool {
        self.worker.is_some()
    }

    // ----------------------------------------------------------------- operations --

    /// Point search, routed to the owning shard.
    pub fn search(&self, key: Key) -> IoResult<Option<Value>> {
        self.inner.single(key, |tree| tree.search(key))
    }

    /// Insert, routed to the owning shard.
    pub fn insert(&self, key: Key, value: Value) -> IoResult<()> {
        let _mutation = self.inner.begin_mutation()?;
        self.inner.single_write(OpEntry::insert(key, value))
    }

    /// Delete, routed to the owning shard.
    pub fn delete(&self, key: Key) -> IoResult<()> {
        let _mutation = self.inner.begin_mutation()?;
        self.inner.single_write(OpEntry::delete(key))
    }

    /// Update, routed to the owning shard.
    pub fn update(&self, key: Key, value: Value) -> IoResult<()> {
        let _mutation = self.inner.begin_mutation()?;
        self.inner.single_write(OpEntry::update(key, value))
    }

    /// MPSearch across shards: the batch is split by owning shard and every
    /// sub-batch runs as a concurrent MPSearch on its shard. Results are returned
    /// in the order of `keys`.
    pub fn multi_search(&self, keys: &[Key]) -> IoResult<Vec<Option<Value>>> {
        self.inner.multi_search(keys)
    }

    /// Batched insert: entries are split by owning shard and applied concurrently,
    /// preserving per-shard arrival order.
    pub fn insert_batch(&self, entries: &[(Key, Value)]) -> IoResult<()> {
        let _mutation = if entries.is_empty() {
            None
        } else {
            Some(self.inner.begin_mutation()?)
        };
        self.inner.insert_batch(entries)
    }

    /// Range search over `[lo, hi)`: every intersecting shard scans its clamped
    /// sub-range concurrently and the per-shard results (each sorted) are stitched
    /// together in shard order, which *is* key order.
    pub fn range_search(&self, lo: Key, hi: Key) -> IoResult<Vec<(Key, Value)>> {
        self.inner.range_search(lo, hi)
    }

    /// Incremental checkpoint: drains the OPQ of every shard that changed since
    /// its last checkpoint (dirty shards in parallel, clean shards untouched),
    /// persists the manifest, and then truncates the shard WALs and the engine
    /// epoch log up to the checkpoint — bounding both on-disk log size and the
    /// work the next [`ShardedPioEngine::recover`] must do. Truncation honours
    /// [`crate::EngineConfig::log_retention_bytes`] and never drops an
    /// undecided epoch's records. The background maintenance worker calls this
    /// on the [`crate::EngineConfig::checkpoint_interval_ms`] cadence.
    pub fn checkpoint(&self) -> IoResult<()> {
        self.inner.checkpoint()
    }

    /// One maintenance pass: every shard whose OPQ fill is at or above the
    /// configured threshold is drained below it (in parallel). Returns the number
    /// of shards flushed. The background worker calls exactly this. Degraded
    /// shards get a healing probe first and are excluded from the flush.
    pub fn maintain_once(&self) -> IoResult<usize> {
        self.inner.maintain_once()
    }

    /// One checksum-scrub pass: every healthy shard re-reads and verifies up
    /// to `max_pages_per_shard` of its checksummed pages, healing rot from
    /// clean pooled copies where possible. Returns the total pages scanned.
    /// The background worker drives this on the
    /// [`EngineConfig::scrub_interval_ms`] cadence; call it directly in
    /// deterministic (no-worker) setups.
    pub fn scrub_once(&self, max_pages_per_shard: usize) -> IoResult<usize> {
        self.inner.scrub_tick(max_pages_per_shard)
    }

    /// Simulates a crash of the whole engine: every shard loses its OPQ, buffer
    /// pool, LSMap and un-forced WAL records, and the engine log loses its
    /// un-forced records. Returns the total number of OPQ entries lost. Call
    /// [`ShardedPioEngine::recover`] afterwards.
    pub fn simulate_crash(&self) -> usize {
        let mut lost = 0;
        for shard in &self.inner.shards {
            lost += shard.tree.lock().simulate_crash();
        }
        if let Some(coord) = &self.inner.epoch {
            coord.log.simulate_crash();
        }
        lost
    }

    /// Engine-level restart recovery. First the engine log is analyzed and every
    /// epoch is given a verdict — **committed** (normal replay), **re-driven**
    /// (uncommitted but durable on every member shard: the missing commit record
    /// is written now), or **discarded** (uncommitted with at least one shard
    /// not durably acked: dropped on *every* shard). Then each shard replays its
    /// own WAL through [`PioBTree::recover_with`], with the discard verdicts as
    /// the redo filter — so after this returns, every cross-shard batch is
    /// either fully present or fully absent (crash matrix in the crate docs).
    pub fn recover(&self) -> IoResult<EngineRecoveryReport> {
        self.inner.recover()
    }

    /// Counts live entries across all shards (expensive; for tests and examples).
    pub fn count_entries(&self) -> IoResult<u64> {
        let mut total: u64 = self.inner.count_entries_tasked()?;
        // The underlying half-open range scan cannot see `Key::MAX` itself, so the
        // sentinel key is counted with a point lookup in its owning (last) shard —
        // routed through the scheduler so its I/O is charged like any other lookup.
        if self.inner.single(Key::MAX, |tree| tree.search(Key::MAX))?.is_some() {
            total += 1;
        }
        Ok(total)
    }

    /// Verifies per-shard structural invariants plus the engine-level invariant
    /// that every shard only holds keys inside its range. Returns the live entry
    /// count. Intended for tests.
    pub fn check_invariants(&self) -> IoResult<u64> {
        let mut total = 0;
        let shard_count = self.inner.shards.len();
        let last_shard = shard_count - 1;
        // Pin the routing table for the whole sweep (and skip the containment
        // assertions while a migration is mid-copy — the destination legally
        // holds out-of-range keys until the commit swaps the boundary).
        let routing = self.inner.routing.read();
        let mid_migration = routing.migration.is_some();
        // Conceptually a fan over all shards: charge the schedule the slowest
        // shard's verification I/O, like fan_out does.
        let mut makespan_us = 0.0f64;
        for (i, shard) in self.inner.shards.iter().enumerate() {
            let (lo, hi) = shard_range(&routing.bounds, i, shard_count);
            let mut tree = shard.tree.lock();
            let before = tree.io_elapsed_us();
            total += tree.check_invariants()?;
            if !mid_migration {
                let in_range = tree.range_search(lo, hi)?.len() as u64;
                let everywhere = tree.range_search(0, Key::MAX)?.len() as u64;
                assert_eq!(in_range, everywhere, "shard {i} holds keys outside [{lo}, {hi})");
                // Half-open scans are blind to `Key::MAX`: check the sentinel
                // key's placement with a point lookup (only the last shard may
                // hold it).
                if i != last_shard {
                    assert!(
                        tree.search(Key::MAX)?.is_none(),
                        "shard {i} holds Key::MAX outside [{lo}, {hi})"
                    );
                }
            }
            makespan_us = makespan_us.max(tree.io_elapsed_us() - before);
        }
        drop(routing);
        self.inner.charge(makespan_us);
        Ok(total)
    }

    /// Aggregated engine statistics.
    pub fn stats(&self) -> EngineStats {
        self.inner.stats()
    }

    /// Schedule makespan so far, µs (see [`EngineStats::scheduled_io_us`]).
    pub fn scheduled_io_us(&self) -> f64 {
        *self.inner.scheduled_us.lock()
    }

    /// Total device work so far across all shards, µs.
    pub fn total_io_us(&self) -> f64 {
        self.inner.shards.iter().map(|s| s.tree.lock().io_elapsed_us()).sum()
    }
}

impl EngineInner {
    pub(crate) fn shard_for(&self, key: Key) -> usize {
        shard_of(&self.routing.read().bounds, key)
    }

    /// Runs a read-only `op` on the shard owning `key`, holding the routing
    /// read lock for the whole operation (so a migration's boundary swap
    /// drains it first) and charging its full I/O delta to the schedule (a
    /// single-shard call has nothing to overlap with).
    fn single<R>(&self, key: Key, op: impl FnOnce(&mut PioBTree) -> IoResult<R>) -> IoResult<R> {
        let routing = self.routing.read();
        let shard = &self.shards[shard_of(&routing.bounds, key)];
        shard.note_routed(1);
        // Reads are attempted even on a degraded shard: the inner tier, buffer
        // pool and leaf cache answer without touching the sick device.
        let mut tree = shard.tree.lock();
        let before = tree.io_elapsed_us();
        let result = op(&mut tree);
        // Charge even on error: any partially performed I/O is in the shard's
        // elapsed time and the makespan must stay in lockstep with it.
        let delta = tree.io_elapsed_us() - before;
        drop(tree);
        shard.health.observe(&result);
        drop(routing);
        self.charge(delta);
        result
    }

    /// Applies one write to the shard owning `entry.key`. Holds the routing
    /// read lock for the whole operation, and — when the key falls in an
    /// active migration's captured range — mirrors the entry into the
    /// migration's dirty log *under the tree lock*, so the dirty log's order
    /// matches the order writes actually applied in.
    fn single_write(&self, entry: OpEntry) -> IoResult<()> {
        let routing = self.routing.read();
        let idx = shard_of(&routing.bounds, entry.key);
        let shard = &self.shards[idx];
        shard.note_routed(1);
        // A degraded shard rejects writes up front: queueing more work onto a
        // sick device only grows the backlog that has to replay once it heals,
        // and the rejection is retryable — callers back off and resubmit.
        if shard.health.is_open() {
            return Err(ShardHealth::rejection(idx));
        }
        let mirror = routing
            .migration
            .as_ref()
            .filter(|m| idx == m.src && entry.key >= m.lo && entry.key < m.hi)
            .map(|m| Arc::clone(&m.dirty));
        let mut tree = shard.tree.lock();
        if let Some(dirty) = mirror {
            // Mirrored even if the apply then errors: an errored write is
            // undecided, and replaying it on the destination errs on the side
            // of never losing an acked write.
            dirty.lock().push(entry);
        }
        let before = tree.io_elapsed_us();
        let result = match entry.op {
            OpKind::Insert => tree.insert(entry.key, entry.value),
            OpKind::Update => tree.update(entry.key, entry.value),
            OpKind::Delete => tree.delete(entry.key),
        };
        let delta = tree.io_elapsed_us() - before;
        note_queue_peak(&shard.queue_peak_pct, &tree);
        drop(tree);
        shard.health.observe(&result);
        drop(routing);
        self.charge(delta);
        result
    }

    pub(crate) fn charge(&self, makespan_us: f64) {
        if makespan_us > 0.0 {
            *self.scheduled_us.lock() += makespan_us;
        }
    }

    /// Fans an operation out to *every* shard through the scheduler and returns
    /// the results in shard order.
    fn fan_out_all(
        &self,
        op: impl Fn(&mut PioBTree) -> IoResult<TaskOutput> + Clone + Send + 'static,
    ) -> IoResult<Vec<TaskOutput>> {
        let work: Vec<(usize, ShardTask)> = (0..self.shards.len())
            .map(|i| {
                let op = op.clone();
                (i, Box::new(move |tree: &mut PioBTree| op(tree)) as ShardTask)
            })
            .collect();
        // Scheduler results are already sorted by shard index.
        Ok(self.fan_out_tasks(work)?.into_iter().map(|(_, out)| out).collect())
    }

    fn multi_search(&self, keys: &[Key]) -> IoResult<Vec<Option<Value>>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        // Partition the batch by owning shard, remembering original positions.
        // Positions and keys live in separate vectors so the key sub-batches can be
        // *moved* into the shard tasks while the positions stay behind for
        // scattering.
        // Pin the routing table across partitioning AND the fan-out: a
        // migration's boundary swap must not land between the two.
        let routing = self.routing.read();
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        let mut sub_keys: Vec<Vec<Key>> = vec![Vec::new(); self.shards.len()];
        for (pos, &key) in keys.iter().enumerate() {
            let s = shard_of(&routing.bounds, key);
            positions[s].push(pos);
            sub_keys[s].push(key);
        }
        let work: Vec<(usize, ShardTask)> = sub_keys
            .into_iter()
            .enumerate()
            .filter(|(_, sub)| !sub.is_empty())
            .map(|(i, sub)| {
                self.shards[i].note_batch(sub.len());
                (
                    i,
                    Box::new(move |tree: &mut PioBTree| tree.multi_search(&sub).map(TaskOutput::Values)) as ShardTask,
                )
            })
            .collect();
        let results = self.fan_out_tasks(work)?;
        drop(routing);
        let mut out = vec![None; keys.len()];
        for (shard_idx, output) in results {
            let TaskOutput::Values(sub_results) = output else {
                unreachable!("multi_search tasks return Values")
            };
            for (pos, verdict) in positions[shard_idx].iter().zip(sub_results) {
                out[*pos] = verdict;
            }
        }
        Ok(out)
    }

    /// Batched insert. With WALs enabled, the batch runs as a two-phase flush
    /// epoch: `Begin` is forced to the engine log before fan-out, every member
    /// shard appends its sub-batch inside an epoch bracket of its own WAL and
    /// forces it, and only after the shard acks are durable is `Commit` forced —
    /// so a crash anywhere in between leaves an epoch that
    /// [`ShardedPioEngine::recover`] resolves to all-or-nothing across shards.
    ///
    /// An *error* return means the batch is undecided: some shards may hold it
    /// durably, and no commit record exists. The caller should either retry the
    /// batch (enqueueing is idempotent) or crash-and-recover the engine, which
    /// discards the epoch everywhere.
    fn insert_batch(&self, entries: &[(Key, Value)]) -> IoResult<()> {
        if entries.is_empty() {
            return Ok(());
        }
        // Pin the routing table across partitioning, fan-out AND commit: the
        // boundary swap of a migration waits for every in-flight batch, so a
        // batch's sub-batches always land where its binning said they would.
        let routing = self.routing.read();
        let mut per_shard: Vec<Vec<(Key, Value)>> = vec![Vec::new(); self.shards.len()];
        for &(key, value) in entries {
            per_shard[shard_of(&routing.bounds, key)].push((key, value));
        }
        let members: Vec<usize> = per_shard
            .iter()
            .enumerate()
            .filter(|(_, batch)| !batch.is_empty())
            .map(|(i, _)| i)
            .collect();
        let epoch = match &self.epoch {
            Some(coord) => {
                let epoch = coord.next_epoch.fetch_add(1, Ordering::Relaxed);
                // Hold the pin map across the Begin force: a concurrent
                // checkpoint computes its truncation floor under this lock, so
                // it either sees the pin or runs before the record is durable
                // (and truncation clamps to the durable frontier).
                let mut pins = coord.in_flight.lock();
                let begin_lsn = coord.log.begin(epoch, &members)?;
                pins.insert(epoch, begin_lsn);
                drop(pins);
                Some(epoch)
            }
            None => None,
        };
        let work: Vec<(usize, ShardTask)> = per_shard
            .into_iter()
            .enumerate()
            .filter(|(_, batch)| !batch.is_empty())
            .map(|(i, batch)| {
                self.shards[i].note_batch(batch.len());
                let peak = Arc::clone(&self.shards[i].queue_peak_pct);
                // Writes landing in an active migration's captured range are
                // mirrored into its dirty log from inside the task — under the
                // tree lock — so the mirror order matches the applied order.
                let mirror = routing
                    .migration
                    .as_ref()
                    .filter(|m| i == m.src)
                    .map(|m| {
                        let subset: Vec<OpEntry> = batch
                            .iter()
                            .filter(|&&(k, _)| k >= m.lo && k < m.hi)
                            .map(|&(k, v)| OpEntry::insert(k, v))
                            .collect();
                        (Arc::clone(&m.dirty), subset)
                    })
                    .filter(|(_, subset)| !subset.is_empty());
                let task: ShardTask = match epoch {
                    Some(epoch) => Box::new(move |tree: &mut PioBTree| {
                        if let Some((dirty, subset)) = mirror {
                            dirty.lock().extend(subset);
                        }
                        let out = tree.insert_batch_epoch(&batch, epoch).map(TaskOutput::Durable);
                        note_queue_peak(&peak, tree);
                        out
                    }),
                    None => Box::new(move |tree: &mut PioBTree| {
                        if let Some((dirty, subset)) = mirror {
                            dirty.lock().extend(subset);
                        }
                        let out = tree.insert_batch(&batch).map(|()| TaskOutput::Unit);
                        note_queue_peak(&peak, tree);
                        out
                    }),
                };
                (i, task)
            })
            .collect();
        let results = self.fan_out_tasks(work)?;
        if let (Some(epoch), Some(coord)) = (epoch, &self.epoch) {
            let acks: Vec<(usize, Lsn)> = results
                .into_iter()
                .map(|(shard, out)| {
                    let TaskOutput::Durable(lsn) = out else {
                        unreachable!("epoch insert tasks return Durable")
                    };
                    (shard, lsn)
                })
                .collect();
            coord.log.ack_all(epoch, &acks)?;
            coord.log.commit(epoch)?;
            // Decided: release the truncation pins — the engine log's (this
            // epoch's records are now redundant for recovery) and each member
            // shard's bracket pin. An error return above keeps both pins, so
            // an undecided epoch can never be truncated away.
            coord.in_flight.lock().remove(&epoch);
            for &(shard, _) in &acks {
                self.shards[shard].tree.lock().resolve_epoch(epoch);
            }
            self.committed_epochs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn range_search(&self, lo: Key, hi: Key) -> IoResult<Vec<(Key, Value)>> {
        if lo >= hi {
            return Ok(Vec::new());
        }
        // Pin the routing table across the fan-out (see `multi_search`).
        let routing = self.routing.read();
        let shard_count = self.shards.len();
        let work: Vec<(usize, ShardTask)> = (0..shard_count)
            .filter_map(|i| {
                let (s_lo, s_hi) = shard_range(&routing.bounds, i, shard_count);
                (s_lo < hi && lo < s_hi).then(|| {
                    let (sub_lo, sub_hi) = (lo.max(s_lo), hi.min(s_hi));
                    (
                        i,
                        Box::new(move |tree: &mut PioBTree| tree.range_search(sub_lo, sub_hi).map(TaskOutput::Entries))
                            as ShardTask,
                    )
                })
            })
            .collect();
        // Scheduler results arrive sorted by shard index, and shard order is key
        // order: concatenation keeps the result sorted.
        let results = self.fan_out_tasks(work)?;
        drop(routing);
        let mut out = Vec::new();
        for (_, output) in results {
            let TaskOutput::Entries(mut part) = output else {
                unreachable!("range_search tasks return Entries")
            };
            out.append(&mut part);
        }
        Ok(out)
    }

    /// Incremental checkpoint: flushes only the shards that logged or queued
    /// work since their last checkpoint, persists the manifest, then truncates
    /// the logs the checkpoint made redundant (shard WALs up to their new
    /// `Checkpoint` records, the engine epoch log up to the pre-flush cursor).
    /// Truncation is anchored on the *committed* checkpoint — the manifest sync
    /// happens first, so the superblocks recovery would need are durable before
    /// any `FlushRoot`/`FlushAlloc` record is dropped — and honours
    /// `log_retention_bytes` plus the undecided-epoch pins (engine-log
    /// `in_flight`, per-shard open brackets).
    pub(crate) fn checkpoint(&self) -> IoResult<()> {
        let begun_before = self.dirty.lock().begun;
        // Snapshot the engine-log cut BEFORE flushing: epoch records appended
        // after this point may belong to batches the flushes do not capture.
        let engine_cut = self.epoch.as_ref().map(|c| c.log.cursor());
        // Incremental selection: a shard pays a flush (and even the Checkpoint
        // record append) only when something reached its log or queue since
        // the last checkpoint. Clean shards are untouched.
        let work: Vec<(usize, ShardTask)> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                let tree = s.tree.lock();
                tree.dirty_ops() > 0 || tree.opq_len() > 0
            })
            .map(|(i, _)| {
                let task: ShardTask = Box::new(|tree: &mut PioBTree| tree.checkpoint().map(TaskOutput::Durable));
                (i, task)
            })
            .collect();
        let flushed: Vec<(usize, Lsn)> = if work.is_empty() {
            Vec::new()
        } else {
            self.fan_out_tasks(work)?
                .into_iter()
                .map(|(shard, out)| {
                    let TaskOutput::Durable(lsn) = out else {
                        unreachable!("checkpoint tasks return Durable")
                    };
                    (shard, lsn)
                })
                .collect()
        };
        // The checkpoint moved the flushed shards' durable frontiers: refresh
        // the persisted manifest so a WAL-less reopen sees the checkpointed
        // state. This MUST precede truncation — once FlushRoot records are
        // gone, the manifest is the only carrier of the rolled-forward roots.
        self.sync_manifest()?;
        // Checkpoint-anchored truncation, gated by the retention window.
        let retention = self.config.log_retention_bytes;
        let mut dropped: u64 = 0;
        for &(shard, ckpt_lsn) in &flushed {
            let mut tree = self.shards[shard].tree.lock();
            if tree.wal_replayable_bytes() > retention {
                dropped += tree.truncate_wal(ckpt_lsn)?;
            }
        }
        if let (Some(cut), Some(coord)) = (engine_cut, &self.epoch) {
            if coord.log.replayable_bytes() > retention {
                dropped += coord.log.truncate_to(coord.truncation_floor(cut))?;
            }
        }
        self.truncated_bytes.fetch_add(dropped, Ordering::Relaxed);
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        // Clear the dirty marker only when provably nothing raced the flush: no
        // mutation began since before the fan-out and none is still in flight.
        // The OPQ/manifest re-check runs while the dirty lock is held, so a new
        // writer (blocked in begin_mutation) cannot slip between the proof and
        // the clear; writers arriving after the clear re-raise the marker.
        let mut state = self.dirty.lock();
        if state.marked && state.in_flight == 0 && state.begun == begun_before {
            let quiescent = self.shards.iter().all(|s| s.tree.lock().opq_len() == 0);
            if quiescent {
                self.sync_manifest()?;
                self.topology.set_dirty(false)?;
                state.marked = false;
            }
        }
        Ok(())
    }

    fn recover(&self) -> IoResult<EngineRecoveryReport> {
        let mut report = EngineRecoveryReport::default();
        let mut discard: HashSet<u64> = HashSet::new();
        let mut boundary_replay: Vec<MigrationSpec> = Vec::new();
        let mut scanned: u64 = 0;
        if let Some(coord) = &self.epoch {
            // Pre-crash pins are meaningless now: every epoch in the log gets
            // a verdict below, and the shard-side brackets are re-registered
            // (or dropped) by the per-shard replay.
            coord.in_flight.lock().clear();
            let analysis = coord.log.analyze()?;
            scanned += analysis.records as u64;
            for state in &analysis.epochs {
                if let Some(migration) = state.migration {
                    if state.committed {
                        // The boundary swap is durable: the copies and retires
                        // replay through normal per-shard recovery, and the
                        // boundary itself is re-applied (in log order) below.
                        report.committed_migrations += 1;
                        boundary_replay.push(migration);
                    } else {
                        // NEVER re-driven, even when fully acked: the swap did
                        // not happen, so the copies belong to a boundary that
                        // never existed. Roll the epoch back on both shards and
                        // keep the old boundary.
                        discard.insert(state.epoch);
                        report.rolled_back_migrations += 1;
                    }
                } else if state.committed {
                    report.committed_epochs += 1;
                } else if state.fully_acked() {
                    // The crash hit between the ack force and the commit force:
                    // the batch is durable on every member shard, so complete the
                    // protocol instead of throwing the batch away.
                    coord.log.commit(state.epoch)?;
                    report.recovered_epochs += 1;
                } else {
                    discard.insert(state.epoch);
                    report.discarded_epochs += 1;
                }
            }
            // Epoch ids must stay unique across restarts: later batches must
            // never collide with epochs already judged in the log.
            coord.next_epoch.store(analysis.max_epoch + 1, Ordering::Relaxed);
        }
        // Re-apply committed boundary swaps in log order (absolute sets, so the
        // replay is idempotent whether the manifest had caught up or not), and
        // drop any in-memory migration state a pre-crash attempt left behind.
        {
            let mut routing = self.routing.write();
            routing.migration = None;
            for migration in &boundary_replay {
                let idx = (migration.src.min(migration.dst)) as usize;
                routing.bounds[idx] = if migration.dst > migration.src {
                    migration.lo
                } else {
                    migration.hi
                };
            }
            if !boundary_replay.is_empty() {
                routing.version += 1;
            }
        }
        let work: Vec<(usize, ShardTask)> = (0..self.shards.len())
            .map(|i| {
                let discard = discard.clone();
                let task: ShardTask = Box::new(move |tree: &mut PioBTree| {
                    tree.recover_with(&mut |epoch| !discard.contains(&epoch))
                        .map(TaskOutput::Recovered)
                });
                (i, task)
            })
            .collect();
        report.shards = self
            .fan_out_tasks(work)?
            .into_iter()
            .map(|(_, out)| {
                let TaskOutput::Recovered(shard_report) = out else {
                    unreachable!("recovery tasks return Recovered")
                };
                shard_report
            })
            .collect();
        self.recovered_epochs
            .fetch_add(report.recovered_epochs, Ordering::Relaxed);
        self.discarded_epochs
            .fetch_add(report.discarded_epochs, Ordering::Relaxed);
        self.committed_migrations
            .fetch_add(report.committed_migrations, Ordering::Relaxed);
        self.rolled_back_migrations
            .fetch_add(report.rolled_back_migrations, Ordering::Relaxed);
        // A re-driven epoch is now committed in the log, so the lifetime
        // committed counter includes it (as its documentation promises).
        self.committed_epochs
            .fetch_add(report.recovered_epochs, Ordering::Relaxed);
        // The bounded-recovery observable: total log records the analysis
        // passes visited (epoch log + every shard WAL). With checkpoint-
        // anchored truncation this tracks activity since the last checkpoint,
        // not the engine's age.
        scanned += report.shards.iter().map(|r| r.scanned as u64).sum::<u64>();
        self.recovery_replayed_records.store(scanned, Ordering::Relaxed);
        // Recovery may have rolled roots forward (reopen) or rewound them
        // (undone flushes): persist the post-recovery superblocks.
        self.sync_manifest()?;
        Ok(report)
    }

    pub(crate) fn count_entries_tasked(&self) -> IoResult<u64> {
        let counts = self.fan_out_all(|tree| tree.count_entries().map(TaskOutput::Count))?;
        Ok(counts
            .into_iter()
            .map(|out| {
                let TaskOutput::Count(n) = out else {
                    unreachable!("count tasks return Count")
                };
                n
            })
            .sum())
    }

    /// Probes every degraded shard's device with one direct page read (the
    /// root page, bypassing all caches) and closes the breaker on success.
    /// Called from the maintenance path so shards heal without foreground
    /// traffic having to risk the sick device first.
    pub(crate) fn probe_degraded(&self) -> usize {
        let mut healed = 0;
        for shard in self.shards.iter().filter(|s| s.health.is_open()) {
            let tree = shard.tree.lock();
            let root = tree.root_page();
            let before = tree.io_elapsed_us();
            let probe = tree.store().store().read_page(root);
            let delta = tree.io_elapsed_us() - before;
            drop(tree);
            self.charge(delta);
            if probe.is_ok() {
                shard.health.close();
                healed += 1;
            }
        }
        healed
    }

    /// One scrub tick: every healthy shard verifies a bounded slice of its
    /// checksummed pages (see [`storage::CachedStore::scrub_step`]). Degraded
    /// shards are skipped — scrub reads would only hammer a device the breaker
    /// just decided to rest.
    pub(crate) fn scrub_tick(&self, max_pages_per_shard: usize) -> IoResult<usize> {
        let mut scanned = 0;
        for shard in self.shards.iter().filter(|s| !s.health.is_open()) {
            let tree = shard.tree.lock();
            let before = tree.io_elapsed_us();
            let result = tree.store().scrub_step(max_pages_per_shard);
            let delta = tree.io_elapsed_us() - before;
            drop(tree);
            self.charge(delta);
            scanned += result?.scanned;
        }
        Ok(scanned)
    }

    pub(crate) fn maintain_once(&self) -> IoResult<usize> {
        // Give degraded shards their healing probe before anything else — the
        // flush pass below deliberately leaves them alone.
        self.probe_degraded();
        // Re-pin any cold inner tier off the foreground path (a cheap no-op
        // for warm or disabled tiers; a failed rebuild just stays cold —
        // descents keep falling back to the store wavefront).
        for shard in self.shards.iter() {
            let mut tree = shard.tree.lock();
            let before = tree.io_elapsed_us();
            let _ = tree.refresh_inner_tier();
            let delta = tree.io_elapsed_us() - before;
            drop(tree);
            self.charge(delta);
        }
        let threshold = self.config.flush_threshold;
        let work: Vec<(usize, ShardTask)> = self
            .shards
            .iter()
            .enumerate()
            // A degraded shard's OPQ stays queued: flushing it would drive a
            // bupdate into the device the breaker is resting.
            .filter(|(_, s)| !s.health.is_open())
            .filter_map(|(i, s)| {
                let tree = s.tree.lock();
                let floor = ((tree.opq_capacity() as f64) * threshold).ceil() as usize;
                let floor = floor.max(1);
                (tree.opq_len() >= floor).then_some((i, floor))
            })
            .map(|(i, floor)| {
                // A selected shard may have been drained by a foreground flush
                // between the scan above (locks released) and the task running;
                // count only shards where this pass actually ran a bupdate.
                (
                    i,
                    Box::new(move |tree: &mut PioBTree| {
                        let mut did_flush = false;
                        while tree.opq_len() >= floor {
                            tree.flush_once()?;
                            did_flush = true;
                        }
                        Ok(TaskOutput::Flushed(did_flush))
                    }) as ShardTask,
                )
            })
            .collect();
        if work.is_empty() {
            return Ok(0);
        }
        let flushed = self
            .fan_out_tasks(work)?
            .into_iter()
            .filter(|(_, out)| matches!(out, TaskOutput::Flushed(true)))
            .count();
        if flushed > 0 {
            self.maintenance_flushes.fetch_add(1, Ordering::Relaxed);
            // Flushes may have grown roots and allocated pages: keep the
            // persisted manifest fresh off the foreground path.
            self.sync_manifest()?;
        }
        Ok(flushed)
    }

    // ----------------------------------------------------------------- rebalance --

    /// The engine configuration (for the sibling `rebalance` module).
    pub(crate) fn engine_config(&self) -> &EngineConfig {
        &self.config
    }

    /// A snapshot of the current boundary keys.
    pub(crate) fn bounds_snapshot(&self) -> Vec<Key> {
        self.routing.read().bounds.clone()
    }

    /// Current per-shard OPQ peak-fill percentages (read without resetting —
    /// the `stats()` snapshot owns the reset; the balancer only needs an
    /// advisory pressure signal).
    pub(crate) fn queue_peaks(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.queue_peak_pct.load(Ordering::Relaxed))
            .collect()
    }

    /// Per-shard routed-op counts since the previous call — the rebalance
    /// monitor's load window, independent of anyone calling `stats()`.
    pub(crate) fn rebalance_window(&self) -> Vec<u64> {
        let mut baseline = self.rebalance_baseline.lock();
        self.shards
            .iter()
            .zip(baseline.iter_mut())
            .map(|(s, base)| {
                let total = s.routed_total.load(Ordering::Relaxed);
                let delta = total - *base;
                *base = total;
                delta
            })
            .collect()
    }

    /// Moves a key range from shard `src` to the adjacent shard `dst` as one
    /// crash-recoverable, epoch-logged migration, serving reads and writes
    /// throughout. Returns `Ok(None)` when the move is vacuous (splitting a
    /// shard with fewer than two entries, merging an already-empty range).
    ///
    /// The sequence (see the `rebalance` module docs for the lifecycle
    /// diagram): install the migration marker under a brief routing write lock
    /// (draining in-flight requests, so later writers see it); snapshot the
    /// moving region from `src`; force `MigrateBegin`; copy the region into
    /// `dst` under the migration epoch *without* holding the routing lock (the
    /// expensive half — traffic flows meanwhile, `src` stays authoritative,
    /// and writes to the range are mirrored into the migration's dirty log);
    /// then, under the routing write lock, replay the dirty tail onto `dst`,
    /// retire the moved keys from `src`, force `Ack`+`MigrateCommit`, and swap
    /// the boundary. A crash anywhere before the commit rolls the whole
    /// migration back at [`ShardedPioEngine::recover`]; a crash after it
    /// re-applies the boundary. An *error* return leaves the engine like a
    /// failed `insert_batch`: consistent for reads (the boundary is
    /// unchanged), but carrying an undecided epoch that the next
    /// crash-recovery cycle rolls back.
    pub(crate) fn migrate(
        &self,
        src: usize,
        dst: usize,
        kind: crate::rebalance::MoveKind,
    ) -> IoResult<Option<crate::rebalance::RebalanceOutcome>> {
        use crate::rebalance::MoveKind;
        let n = self.shards.len();
        let adjacency_ok = match kind {
            MoveKind::SplitUpper => dst == src + 1 && dst < n,
            MoveKind::SplitLower => src >= 1 && dst == src - 1,
            // A merge may empty any shard except the last (the `Key::MAX`
            // sentinel can never leave it): to fold the last shard's range
            // away, merge its *left neighbour into it* instead.
            MoveKind::MergeAll => (dst == src + 1 && dst < n) || (src >= 1 && dst == src - 1 && src != n - 1),
        };
        if !adjacency_ok || src >= n {
            return Err(pio::IoError::InvalidConfig(format!(
                "invalid migration {src} -> {dst} ({kind:?}) over {n} shards"
            )));
        }
        let _mutation = self.begin_mutation()?;
        // Install the migration marker. The write acquisition drains every
        // in-flight request; once it is released, new writes in the captured
        // range mirror themselves into the dirty log.
        {
            let mut routing = self.routing.write();
            if routing.migration.is_some() {
                return Err(pio::IoError::InvalidConfig(
                    "a shard migration is already in flight".into(),
                ));
            }
            let (lo, hi) = shard_range(&routing.bounds, src, n);
            routing.migration = Some(ActiveMigration {
                src,
                dst,
                lo,
                hi,
                dirty: Arc::new(Mutex::new(Vec::new())),
            });
        }
        let result = self.migrate_run(src, dst, kind);
        if !matches!(result, Ok(Some(_))) {
            // Vacuous or failed: withdraw the marker (the success path consumed
            // it inside the commit's critical section).
            self.routing.write().migration = None;
        }
        result
    }

    /// The body of [`EngineInner::migrate`], running with the migration marker
    /// installed. Any `Err` is cleaned up by the caller.
    fn migrate_run(
        &self,
        src: usize,
        dst: usize,
        kind: crate::rebalance::MoveKind,
    ) -> IoResult<Option<crate::rebalance::RebalanceOutcome>> {
        use crate::rebalance::{MoveKind, RebalanceOutcome};
        let (cap_lo, cap_hi) = {
            let routing = self.routing.read();
            let m = routing.migration.as_ref().expect("installed by migrate");
            debug_assert_eq!((m.src, m.dst), (src, dst));
            (m.lo, m.hi)
        };
        // Snapshot the source range (a pipelined prange scan + OPQ overlay).
        let snapshot = {
            let mut tree = self.shards[src].tree.lock();
            let before = tree.io_elapsed_us();
            let out = tree.export_region(cap_lo, cap_hi);
            let delta = tree.io_elapsed_us() - before;
            drop(tree);
            self.charge(delta);
            out?
        };
        // Choose the final moving range. Split cuts at the median key, so both
        // halves inherit half the (observed) population.
        let (lo, hi, moving): (Key, Key, Vec<(Key, Value)>) = match kind {
            MoveKind::SplitUpper => {
                if snapshot.len() < 2 {
                    return Ok(None);
                }
                let cut = snapshot[snapshot.len() / 2].0;
                (cut, cap_hi, snapshot[snapshot.len() / 2..].to_vec())
            }
            MoveKind::SplitLower => {
                if snapshot.len() < 2 {
                    return Ok(None);
                }
                let cut = snapshot[snapshot.len() / 2].0;
                (cap_lo, cut, snapshot[..snapshot.len() / 2].to_vec())
            }
            MoveKind::MergeAll => {
                if cap_lo == cap_hi {
                    return Ok(None);
                }
                (cap_lo, cap_hi, snapshot)
            }
        };
        // Journal the migration before any entry crosses shards.
        let epoch = match &self.epoch {
            Some(coord) => {
                let ep = coord.next_epoch.fetch_add(1, Ordering::Relaxed);
                // Pin the epoch against engine-log truncation for its whole
                // undecided window (same discipline as `insert_batch`).
                let mut pins = coord.in_flight.lock();
                let begin_lsn = coord.log.migrate_begin(
                    ep,
                    MigrationSpec {
                        src: src as u32,
                        dst: dst as u32,
                        lo,
                        hi,
                    },
                )?;
                pins.insert(ep, begin_lsn);
                drop(pins);
                Some(ep)
            }
            None => None,
        };
        // Phase 1 — the expensive copy, off the routing lock: traffic keeps
        // flowing, `src` stays authoritative, writes to the range are mirrored.
        {
            let mut tree = self.shards[dst].tree.lock();
            let before = tree.io_elapsed_us();
            let out = match epoch {
                Some(ep) => tree.import_region(&moving, ep).map(|_| ()),
                None => tree.insert_batch(&moving),
            };
            let delta = tree.io_elapsed_us() - before;
            drop(tree);
            self.charge(delta);
            out?;
        }
        // Phase 2 — the critical section: acquiring the routing write lock
        // waits out every in-flight request, so the dirty log is complete and
        // no new write can land on `src` until the boundary has swapped.
        let mut routing = self.routing.write();
        let migration = routing.migration.take().expect("installed by migrate");
        let dirty = std::mem::take(&mut *migration.dirty.lock());
        let tail: Vec<OpEntry> = dirty.into_iter().filter(|e| e.key >= lo && e.key < hi).collect();
        let dst_lsn = {
            let mut tree = self.shards[dst].tree.lock();
            let before = tree.io_elapsed_us();
            let out = match epoch {
                Some(ep) => tree.apply_batch_epoch(&tail, ep),
                None => {
                    for e in &tail {
                        match e.op {
                            OpKind::Insert => tree.insert(e.key, e.value)?,
                            OpKind::Update => tree.update(e.key, e.value)?,
                            OpKind::Delete => tree.delete(e.key)?,
                        }
                    }
                    Ok(0)
                }
            };
            let delta = tree.io_elapsed_us() - before;
            drop(tree);
            self.charge(delta);
            out?
        };
        // Retire everything that may live in the moved range on `src`: the
        // snapshot keys plus every mirrored key (a delete of an absent key is
        // a harmless tombstone).
        let mut retire: Vec<Key> = moving.iter().map(|&(k, _)| k).collect();
        retire.extend(tail.iter().map(|e| e.key));
        retire.sort_unstable();
        retire.dedup();
        let src_lsn = {
            let mut tree = self.shards[src].tree.lock();
            let before = tree.io_elapsed_us();
            let out = match epoch {
                Some(ep) => tree.retire_region(&retire, ep),
                None => {
                    for &k in &retire {
                        tree.delete(k)?;
                    }
                    Ok(0)
                }
            };
            let delta = tree.io_elapsed_us() - before;
            drop(tree);
            self.charge(delta);
            out?
        };
        if let (Some(ep), Some(coord)) = (epoch, &self.epoch) {
            coord.log.ack_all(ep, &[(src, src_lsn), (dst, dst_lsn)])?;
            // The durable boundary swap: before this force the migration rolls
            // back on recovery, after it the new boundary is re-applied.
            coord.log.migrate_commit(ep)?;
            coord.in_flight.lock().remove(&ep);
        }
        let idx = src.min(dst);
        routing.bounds[idx] = if dst > src { lo } else { hi };
        routing.version += 1;
        drop(routing);
        // Decided: release both shards' bracket pins so the next checkpoint
        // may truncate past the migration's records.
        if let Some(ep) = epoch {
            self.shards[src].tree.lock().resolve_epoch(ep);
            self.shards[dst].tree.lock().resolve_epoch(ep);
        }
        // The boundary swap is durable: re-pin both shards' inner tiers so no
        // pre-migration snapshot can serve a descent across the new boundary
        // (best effort — a failed rebuild leaves the tier cold, not stale).
        for &i in &[src, dst] {
            let mut tree = self.shards[i].tree.lock();
            let before = tree.io_elapsed_us();
            let _ = tree.refresh_inner_tier();
            let delta = tree.io_elapsed_us() - before;
            drop(tree);
            self.charge(delta);
        }
        let moved_keys = retire.len() as u64;
        self.migrated_keys.fetch_add(moved_keys, Ordering::Relaxed);
        match kind {
            MoveKind::MergeAll => self.merges.fetch_add(1, Ordering::Relaxed),
            _ => self.splits.fetch_add(1, Ordering::Relaxed),
        };
        self.sync_manifest()?;
        Ok(Some(RebalanceOutcome {
            kind,
            src,
            dst,
            lo,
            hi,
            moved_keys,
            epoch,
        }))
    }

    fn stats(&self) -> EngineStats {
        // Snapshot the makespan BEFORE sweeping the shards: work is charged only
        // after its device time has accrued in a shard's counters, so everything in
        // this reading is already contained in the shard sweep that follows — the
        // snapshot preserves `scheduled_io_us <= total_io_us` even while the
        // background worker (or other clients) keep operating mid-sweep.
        let scheduled_io_us = *self.scheduled_us.lock();
        // A brief routing read: bounds for the per-shard key ranges, plus the
        // migration flag. Dropped before the shard sweep so stats never holds
        // routing across tree locks longer than needed.
        let (bounds, active_migration, routing_version) = {
            let routing = self.routing.read();
            (routing.bounds.clone(), routing.migration.is_some(), routing.version)
        };
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut rollup = PioStats::default();
        let mut total_io = 0.0;
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut queued = 0usize;
        let mut pipeline_depth = 0usize;
        let mut batched_calls = 0u64;
        let mut batched_ops = 0u64;
        let mut leaf_cache = LeafCacheStats::default();
        let mut degraded_shards = 0usize;
        let mut breaker_opens = 0u64;
        let mut breaker_closes = 0u64;
        let mut integrity = storage::IntegrityStats::default();
        let mut io_retries = 0u64;
        let mut io_give_ups = 0u64;
        for (i, shard) in self.shards.iter().enumerate() {
            let (key_lo, key_hi) = shard_range(&bounds, i, self.shards.len());
            let shard_batched_calls = shard.batched_calls.load(Ordering::Relaxed);
            let shard_batched_ops = shard.batched_ops.load(Ordering::Relaxed);
            batched_calls += shard_batched_calls;
            batched_ops += shard_batched_ops;
            // Window counters: reset on read, so each snapshot reports the
            // activity since the previous one.
            let routed_ops = shard.routed_since.swap(0, Ordering::Relaxed);
            let queue_peak_pct = shard.queue_peak_pct.swap(0, Ordering::Relaxed);
            let degraded = shard.health.is_open();
            let consecutive_failures = shard.health.consecutive_failures.load(Ordering::Relaxed);
            let shard_breaker_opens = shard.health.opens.load(Ordering::Relaxed);
            let shard_breaker_closes = shard.health.closes.load(Ordering::Relaxed);
            let corruption_errors = shard.health.corruption_errors.load(Ordering::Relaxed);
            let tree = shard.tree.lock();
            let pio = tree.stats();
            let pool = tree.store().pool_stats();
            let shard_leaf_cache = tree.store().leaf_cache_stats();
            let store = tree.store().store().stats();
            let shard_integrity = tree.store().integrity_stats();
            let mut backend_io = tree.store().store().io().io_stats();
            // The shard WAL appends through its own retry-wrapped queue; its
            // retries and give-ups belong in the same resilience rollup.
            if let Some(wal) = tree.wal() {
                let wal_io = wal.io().stats();
                backend_io.retries += wal_io.retries;
                backend_io.give_ups += wal_io.give_ups;
            }
            let io_us = tree.io_elapsed_us();
            rollup.merge(&pio);
            leaf_cache.merge(&shard_leaf_cache);
            degraded_shards += degraded as usize;
            breaker_opens += shard_breaker_opens;
            breaker_closes += shard_breaker_closes;
            integrity.merge(&shard_integrity);
            io_retries += backend_io.retries;
            io_give_ups += backend_io.give_ups;
            total_io += io_us;
            hits += pool.hits;
            misses += pool.misses;
            queued += tree.opq_len();
            pipeline_depth = pipeline_depth.max(tree.pipeline_depth());
            shards.push(ShardSnapshot {
                shard: i,
                key_lo,
                key_hi,
                height: tree.height(),
                pipeline_depth: tree.pipeline_depth(),
                opq_len: tree.opq_len(),
                opq_capacity: tree.opq_capacity(),
                batched_calls: shard_batched_calls,
                batched_ops: shard_batched_ops,
                routed_ops,
                queue_peak_pct,
                pio,
                pool,
                leaf_cache: shard_leaf_cache,
                store,
                io_elapsed_us: io_us,
                wal_replayable_bytes: tree.wal_replayable_bytes(),
                degraded,
                consecutive_failures,
                breaker_opens: shard_breaker_opens,
                breaker_closes: shard_breaker_closes,
                corruption_errors,
                integrity: shard_integrity,
                io_retries: backend_io.retries,
                io_give_ups: backend_io.give_ups,
            });
        }
        EngineStats {
            topology: self.topology.name(),
            shards,
            rollup,
            total_io_us: total_io,
            scheduled_io_us,
            scheduled_batches: self.scheduled_batches.load(Ordering::Relaxed),
            batched_calls,
            batched_ops,
            pipeline_depth,
            pool_hit_ratio: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            leaf_cache,
            queued_ops: queued,
            committed_epochs: self.committed_epochs.load(Ordering::Relaxed),
            recovered_epochs: self.recovered_epochs.load(Ordering::Relaxed),
            discarded_epochs: self.discarded_epochs.load(Ordering::Relaxed),
            splits: self.splits.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
            migrated_keys: self.migrated_keys.load(Ordering::Relaxed),
            committed_migrations: self.committed_migrations.load(Ordering::Relaxed),
            rolled_back_migrations: self.rolled_back_migrations.load(Ordering::Relaxed),
            active_migration,
            routing_version,
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            truncated_bytes: self.truncated_bytes.load(Ordering::Relaxed),
            recovery_replayed_records: self.recovery_replayed_records.load(Ordering::Relaxed),
            epoch_log_bytes: self.epoch.as_ref().map_or(0, |c| c.log.replayable_bytes()),
            degraded_shards,
            breaker_opens,
            breaker_closes,
            integrity,
            io_retries,
            io_give_ups,
            maintenance_flushes: self.maintenance_flushes.load(Ordering::Relaxed),
            maintenance_errors: self.maintenance_errors.load(Ordering::Relaxed),
            last_maintenance_error: self.last_maintenance_error.lock().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_sim::DeviceProfile;

    fn small_config(shards: usize) -> EngineConfig {
        EngineConfig::builder()
            .shards(shards)
            .profile(DeviceProfile::F120)
            .shard_capacity_bytes(1 << 30)
            .base(
                PioConfig::builder()
                    .page_size(2048)
                    .leaf_segments(2)
                    .opq_pages(1) // one OPQ page per shard
                    .pio_max(16)
                    .speriod(50)
                    .bcnt(100)
                    .pool_pages(256)
                    .build(),
            )
            .build()
    }

    /// Epoch ids are allocated outside the pin lock, so a smaller id can pin a
    /// HIGHER Begin-LSN than a larger one. The truncation floor must be the
    /// minimum pinned LSN, not the smallest-id entry's pin — taking the latter
    /// would let a checkpoint truncate a still-undecided epoch's Begin record.
    #[test]
    fn truncation_floor_uses_the_minimum_pin_not_the_smallest_epoch_id() {
        let io: Arc<dyn ParallelIo> = Arc::new(pio::SimPsyncIo::with_profile(DeviceProfile::F120, 16 << 20));
        let coord = EpochCoordinator {
            log: EpochLog::new(Wal::new(io, 0, 2048)),
            next_epoch: AtomicU64::new(7),
            in_flight: Mutex::new(std::collections::BTreeMap::new()),
        };
        assert_eq!(coord.truncation_floor(1000), 1000, "no pins: the cut passes through");
        // Inverted order: epoch 5 began at LSN 900, epoch 6 at LSN 400.
        coord.in_flight.lock().extend([(5u64, 900u64), (6u64, 400u64)]);
        assert_eq!(coord.truncation_floor(1000), 400, "the floor is the minimum pin");
        assert_eq!(coord.truncation_floor(300), 300, "a cut below every pin is unaffected");
        coord.in_flight.lock().remove(&6);
        assert_eq!(coord.truncation_floor(1000), 900, "the floor follows the surviving pin");
    }

    #[test]
    fn boundaries_cut_quantiles_of_the_sample() {
        let sample: Vec<Key> = (0..1000u64).collect();
        let bounds = boundaries_from_sample(&sample, 4);
        assert_eq!(bounds.len(), 3);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert!(bounds[0] >= 200 && bounds[0] <= 300, "{bounds:?}");
        assert!(bounds[1] >= 450 && bounds[1] <= 550, "{bounds:?}");
    }

    #[test]
    fn boundaries_fall_back_to_uniform_cuts() {
        let bounds = boundaries_from_sample(&[], 4);
        assert_eq!(bounds.len(), 3);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        // Roughly uniform over u64.
        assert!(bounds[0] > Key::MAX / 8 && bounds[0] < Key::MAX / 2);
        // A tiny sample still yields a full set of cuts.
        let bounds = boundaries_from_sample(&[10], 4);
        assert_eq!(bounds.len(), 3);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn shard_for_routes_by_boundaries() {
        let engine = ShardedPioEngine::create(small_config(4), &(0..4000u64).collect::<Vec<_>>()).unwrap();
        assert_eq!(engine.shard_count(), 4);
        let bounds = engine.boundaries().to_vec();
        assert_eq!(engine.shard_for(0), 0);
        assert_eq!(engine.shard_for(bounds[0] - 1), 0);
        assert_eq!(engine.shard_for(bounds[0]), 1);
        assert_eq!(engine.shard_for(bounds[2]), 3);
        assert_eq!(engine.shard_for(Key::MAX), 3);
    }

    #[test]
    fn operations_round_trip_across_shards() {
        let engine = ShardedPioEngine::create(small_config(4), &(0..10_000u64).collect::<Vec<_>>()).unwrap();
        for k in 0..2_000u64 {
            engine.insert(k * 5, k).unwrap();
        }
        engine.checkpoint().unwrap();
        assert_eq!(engine.search(500).unwrap(), Some(100));
        assert_eq!(engine.search(501).unwrap(), None);
        engine.delete(500).unwrap();
        engine.update(505, 999).unwrap();
        assert_eq!(engine.search(500).unwrap(), None);
        assert_eq!(engine.search(505).unwrap(), Some(999));
        assert_eq!(engine.count_entries().unwrap(), 1_999);
        engine.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_partitions_entries() {
        let entries: Vec<(Key, Value)> = (0..20_000u64).map(|k| (k * 2, k)).collect();
        let engine = ShardedPioEngine::bulk_load(small_config(4), &entries).unwrap();
        assert_eq!(engine.count_entries().unwrap(), 20_000);
        let stats = engine.stats();
        // Quantile boundaries must spread the load roughly evenly.
        for snap in &stats.shards {
            let mine = entries
                .iter()
                .filter(|&&(k, _)| k >= snap.key_lo && k < snap.key_hi)
                .count();
            assert!(
                (3_000..=7_000).contains(&mine),
                "shard {} holds {} entries",
                snap.shard,
                mine
            );
        }
        assert_eq!(engine.search(10_000).unwrap(), Some(5_000));
        engine.check_invariants().unwrap();
    }

    #[test]
    fn multi_search_preserves_caller_order() {
        let entries: Vec<(Key, Value)> = (0..8_000u64).map(|k| (k * 3, k)).collect();
        let engine = ShardedPioEngine::bulk_load(small_config(4), &entries).unwrap();
        let keys: Vec<Key> = (0..500u64).map(|i| (i * 7919) % 30_000).collect();
        let got = engine.multi_search(&keys).unwrap();
        for (k, verdict) in keys.iter().zip(&got) {
            let expected = if k % 3 == 0 && *k < 24_000 { Some(k / 3) } else { None };
            assert_eq!(*verdict, expected, "key {k}");
        }
    }

    #[test]
    fn range_search_stitches_across_shard_boundaries() {
        let entries: Vec<(Key, Value)> = (0..10_000u64).map(|k| (k, k * 10)).collect();
        let engine = ShardedPioEngine::bulk_load(small_config(4), &entries).unwrap();
        let bounds = engine.boundaries().to_vec();
        // A range straddling the middle boundary.
        let lo = bounds[1] - 100;
        let hi = bounds[1] + 100;
        let out = engine.range_search(lo, hi).unwrap();
        assert_eq!(out.len(), 200);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "must be sorted");
        assert_eq!(out.first().unwrap().0, lo);
        assert_eq!(out.last().unwrap().0, hi - 1);
        // Full scan equals the population.
        assert_eq!(engine.range_search(0, Key::MAX).unwrap().len(), 10_000);
    }

    #[test]
    fn insert_batch_fans_out_and_preserves_data() {
        let engine = ShardedPioEngine::create(small_config(4), &(0..40_000u64).collect::<Vec<_>>()).unwrap();
        let batch: Vec<(Key, Value)> = (0..5_000u64).map(|i| ((i * 2_654_435_761) % 40_000, i)).collect();
        engine.insert_batch(&batch).unwrap();
        engine.checkpoint().unwrap();
        // Last write wins per key: build the model the same way.
        let mut model = std::collections::BTreeMap::new();
        for &(k, v) in &batch {
            model.insert(k, v);
        }
        for (&k, &v) in model.iter().step_by(97) {
            assert_eq!(engine.search(k).unwrap(), Some(v), "key {k}");
        }
        assert_eq!(engine.count_entries().unwrap(), model.len() as u64);
        engine.check_invariants().unwrap();
    }

    #[test]
    fn batch_occupancy_counters_track_sub_batches() {
        let entries: Vec<(Key, Value)> = (0..8_000u64).map(|k| (k, k)).collect();
        let engine = ShardedPioEngine::bulk_load(small_config(4), &entries).unwrap();
        assert_eq!(engine.stats().batched_calls, 0, "bulk load is not a batched call");

        // 64 keys spread across the full space: every shard gets a sub-batch.
        let keys: Vec<Key> = (0..64u64).map(|i| i * 125).collect();
        engine.multi_search(&keys).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.batched_ops, 64, "every key lands in exactly one sub-batch");
        assert_eq!(stats.batched_calls, 4, "one sub-batch per participating shard");
        assert!((stats.avg_batch_occupancy() - 16.0).abs() < 1e-9);
        for snap in &stats.shards {
            assert_eq!(snap.batched_calls, 1, "shard {}", snap.shard);
            assert!(snap.batched_ops > 0, "shard {}", snap.shard);
        }

        // A batched insert confined to one shard lands on exactly one counter.
        let batch: Vec<(Key, Value)> = (0..10u64).map(|i| (i, i)).collect();
        engine.insert_batch(&batch).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.batched_ops, 74);
        assert_eq!(stats.batched_calls, 5);
        assert_eq!(stats.shards[0].batched_calls, 2, "the insert hit only shard 0");
        // Single-key operations and range scans are not point sub-batches.
        engine.search(1).unwrap();
        engine.range_search(0, 1_000).unwrap();
        assert_eq!(engine.stats().batched_calls, 5);
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let mut config = small_config(2);
        config.flush_threshold = 2.0;
        let err = ShardedPioEngine::create(config, &[]).unwrap_err();
        assert!(err.to_string().contains("flush_threshold"), "{err}");
    }

    #[test]
    fn maintenance_drains_full_opqs() {
        let mut config = small_config(2);
        config.flush_threshold = 0.25;
        let engine = ShardedPioEngine::create(config, &(0..1_000u64).collect::<Vec<_>>()).unwrap();
        for k in 0..60u64 {
            engine.insert(k * 16 % 1_000, k).unwrap();
        }
        let queued_before = engine.stats().queued_ops;
        assert!(queued_before > 0);
        let flushed = engine.maintain_once().unwrap();
        assert!(flushed >= 1, "at least one shard must flush");
        let stats = engine.stats();
        assert!(stats.queued_ops < queued_before);
        assert_eq!(stats.maintenance_flushes, 1);
        // Below threshold now: a second pass is a no-op.
        assert_eq!(engine.maintain_once().unwrap(), 0);
    }

    #[test]
    fn background_worker_flushes_without_explicit_calls() {
        let mut config = small_config(2);
        config.flush_threshold = 0.1;
        config.maintenance_interval_ms = Some(1);
        let engine = ShardedPioEngine::create(config, &(0..1_000u64).collect::<Vec<_>>()).unwrap();
        assert!(engine.has_background_maintenance());
        for k in 0..200u64 {
            engine.insert(k * 5 % 1_000, k).unwrap();
        }
        // Wait (bounded) for the worker to drain the queues.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let queued = engine.stats().queued_ops;
            if queued < 40 || std::time::Instant::now() > deadline {
                assert!(queued < 40, "worker should have drained the OPQs, {queued} left");
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let stats = engine.stats();
        assert!(stats.maintenance_flushes >= 1);
        assert_eq!(stats.maintenance_errors, 0);
        assert!(stats.last_maintenance_error.is_none());
    }

    fn wal_config(shards: usize) -> EngineConfig {
        let mut config = small_config(shards);
        config.base.wal_enabled = true;
        config
    }

    #[test]
    fn committed_batches_survive_an_engine_crash() {
        let engine = ShardedPioEngine::create(wal_config(3), &(0..9_000u64).collect::<Vec<_>>()).unwrap();
        let batch: Vec<(Key, Value)> = (0..90u64).map(|k| (k * 100, k + 1)).collect();
        engine.insert_batch(&batch).unwrap();
        assert_eq!(engine.stats().committed_epochs, 1, "one epoch per batched insert");

        let lost = engine.simulate_crash();
        assert!(lost >= batch.len(), "the queued batch is lost with the OPQs");
        let report = engine.recover().unwrap();
        assert_eq!(report.committed_epochs, 1);
        assert_eq!(report.recovered_epochs, 0);
        assert_eq!(report.discarded_epochs, 0);
        assert!(report.redone() >= batch.len(), "every entry re-drives through the WALs");

        engine.checkpoint().unwrap();
        for &(k, v) in &batch {
            assert_eq!(engine.search(k).unwrap(), Some(v), "key {k}");
        }
        engine.check_invariants().unwrap();
    }

    #[test]
    fn epoch_ids_stay_unique_across_restarts() {
        let engine = ShardedPioEngine::create(wal_config(2), &(0..1_000u64).collect::<Vec<_>>()).unwrap();
        for round in 0..3u64 {
            let batch: Vec<(Key, Value)> = (0..20u64).map(|k| (k * 7 + round, round)).collect();
            engine.insert_batch(&batch).unwrap();
            engine.simulate_crash();
            let report = engine.recover().unwrap();
            assert_eq!(report.discarded_epochs, 0, "round {round}");
            assert_eq!(report.committed_epochs, round + 1, "epochs accumulate in the log");
        }
        engine.checkpoint().unwrap();
        engine.check_invariants().unwrap();
    }

    #[test]
    fn recovery_without_wals_is_a_noop() {
        let engine = ShardedPioEngine::create(small_config(2), &(0..100u64).collect::<Vec<_>>()).unwrap();
        engine.insert_batch(&[(1, 1), (99, 2)]).unwrap();
        engine.simulate_crash();
        let report = engine.recover().unwrap();
        assert_eq!(report.redone(), 0, "nothing to replay without WALs");
        assert_eq!(engine.search(1).unwrap(), None, "unlogged queued entries are gone");
        assert_eq!(engine.stats().committed_epochs, 0);
    }

    #[test]
    fn scheduled_io_is_at_most_total_io() {
        let entries: Vec<(Key, Value)> = (0..20_000u64).map(|k| (k, k)).collect();
        let engine = ShardedPioEngine::bulk_load(small_config(4), &entries).unwrap();
        let keys: Vec<Key> = (0..256u64).map(|i| i * 73 % 20_000).collect();
        engine.multi_search(&keys).unwrap();
        let stats = engine.stats();
        assert!(stats.scheduled_io_us > 0.0);
        assert!(
            stats.scheduled_io_us <= stats.total_io_us + 1e-9,
            "makespan {} must not exceed device work {}",
            stats.scheduled_io_us,
            stats.total_io_us
        );
        assert!(stats.overlap_factor() >= 1.0);
    }

    #[test]
    fn one_shard_schedule_equals_device_work() {
        // With a single shard there is nothing to overlap, so the lifetime
        // makespan (including the bulk load) must equal the device work exactly.
        let entries: Vec<(Key, Value)> = (0..10_000u64).map(|k| (k, k)).collect();
        let engine = ShardedPioEngine::bulk_load(small_config(1), &entries).unwrap();
        for k in 0..500u64 {
            engine.insert(k * 3, k).unwrap();
        }
        engine.checkpoint().unwrap();
        engine.multi_search(&(0..64u64).collect::<Vec<_>>()).unwrap();
        // The diagnostic paths must also keep the schedule in lockstep.
        engine.count_entries().unwrap();
        engine.check_invariants().unwrap();
        let stats = engine.stats();
        assert!(stats.total_io_us > 0.0);
        assert!(
            (stats.scheduled_io_us - stats.total_io_us).abs() < 1e-6,
            "1 shard: makespan {} must equal device work {}",
            stats.scheduled_io_us,
            stats.total_io_us
        );
        assert!((stats.overlap_factor() - 1.0).abs() < 1e-9);
    }
}
