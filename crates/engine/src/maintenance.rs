//! The background maintenance worker.
//!
//! The paper's OPQ flush (bupdate) runs on the caller's critical path: the insert
//! that fills the queue pays for the whole batch update. The engine moves that work
//! off the foreground path: a detached worker thread periodically sweeps the shards
//! and drains any OPQ at or above the configured fill threshold, so foreground
//! operations only ever flush when a queue fills completely between two sweeps.
//!
//! The worker parks between sweeps and is stopped-and-joined when the engine is
//! dropped, so it never outlives the shards it maintains.

use crate::sharded::EngineInner;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Pages each shard verifies per scrub tick: enough to cycle a multi-thousand
/// page shard in minutes at default cadences, small enough that one tick's
/// read burst never crowds out foreground traffic.
const SCRUB_PAGES_PER_TICK: usize = 128;

/// Handle to the background maintenance thread; stopping is handled by `Drop`.
pub(crate) struct MaintenanceWorker {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MaintenanceWorker {
    /// Spawns a worker sweeping `inner` every `interval`.
    pub(crate) fn spawn(inner: Arc<EngineInner>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("engine-maintenance".into())
            .spawn(move || {
                let checkpoint_every = inner.engine_config().checkpoint_interval_ms.map(Duration::from_millis);
                let scrub_every = inner.engine_config().scrub_interval_ms.map(Duration::from_millis);
                let mut last_checkpoint = Instant::now();
                let mut last_scrub = Instant::now();
                while !stop_flag.load(Ordering::Acquire) {
                    // A failed flush keeps its batch queued (flush_once restores
                    // it), but partially applied node writes may need WAL recovery,
                    // so the error is recorded and surfaced through EngineStats
                    // rather than silently dropped. The sweep moves on to keep the
                    // healthy shards drained.
                    if let Err(e) = inner.maintain_once() {
                        inner.note_maintenance_error(&e);
                    }
                    // With auto-rebalance enabled, each sweep also runs one
                    // balancer decision cycle: at most one split/merge
                    // migration per interval, so the worker can never thrash
                    // boundaries faster than it drains queues.
                    if inner.engine_config().rebalance.auto {
                        if let Err(e) = inner.auto_rebalance_tick() {
                            inner.note_maintenance_error(&e);
                        }
                    }
                    // Checkpoint cadence: dirty-shard tracking makes the
                    // checkpoint incremental, so running it from the sweep
                    // costs only what actually changed since the last tick
                    // (plus the log truncation it anchors).
                    if let Some(every) = checkpoint_every {
                        if last_checkpoint.elapsed() >= every {
                            if let Err(e) = inner.checkpoint() {
                                inner.note_maintenance_error(&e);
                            }
                            last_checkpoint = Instant::now();
                        }
                    }
                    // Scrub cadence: each tick verifies a bounded slice of
                    // every healthy shard's checksummed pages, so a full pass
                    // amortises over many sweeps instead of stalling one.
                    if let Some(every) = scrub_every {
                        if last_scrub.elapsed() >= every {
                            if let Err(e) = inner.scrub_tick(SCRUB_PAGES_PER_TICK) {
                                inner.note_maintenance_error(&e);
                            }
                            last_scrub = Instant::now();
                        }
                    }
                    std::thread::park_timeout(interval);
                }
            })
            .expect("spawn maintenance worker");
        Self {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for MaintenanceWorker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}
