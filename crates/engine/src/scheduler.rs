//! The persistent shard worker pool and the event-driven cross-shard scheduler.
//!
//! PR 1's router spawned (and joined) one scoped OS thread per shard on *every*
//! batched engine call — correct, but each call paid thread-creation latency and
//! the join order dictated result collection. This module replaces that with
//! long-lived machinery created once per engine:
//!
//! * **one worker thread per shard**, fed over an mpsc channel. A worker locks its
//!   shard's tree, runs the task (catching panics so one poisoned call cannot kill
//!   the pool), measures the shard's simulated-I/O delta, and reports a completion;
//! * **one scheduler thread** that owns a single receive loop for *both* new
//!   fan-out requests (from any engine caller, including the background
//!   maintenance worker) and worker completions. It submits each shard's task the
//!   moment the request arrives and reaps completions as they land — tasks of
//!   different calls interleave freely on disjoint shards;
//! * completions are collected **by shard index**, never by arrival order, so the
//!   fan-out result is deterministic regardless of which shard finishes first;
//! * when a call's last completion lands, the scheduler charges the **maximum**
//!   per-shard I/O delta of the call to the engine's schedule makespan
//!   ([`crate::EngineStats::scheduled_io_us`]) — the same accounting the scoped
//!   router performed, now maintained by a single event loop.
//!
//! Batched engine calls therefore spawn **zero** threads: the only threads alive
//! are the per-shard workers, the scheduler, and (optionally) the maintenance
//! sweeper.

use crate::sharded::EngineInner;
use btree::{Key, Value};
use pio::{IoError, IoResult};
use pio_btree::PioBTree;
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Result payload of one shard task (one variant per batched engine operation).
pub(crate) enum TaskOutput {
    /// `multi_search` verdicts for the shard's sub-batch.
    Values(Vec<Option<Value>>),
    /// `range_search` hits for the shard's clamped sub-range.
    Entries(Vec<(Key, Value)>),
    /// `count_entries` tally.
    Count(u64),
    /// Whether a maintenance task actually flushed the shard.
    Flushed(bool),
    /// A shard's durability ack for an epoch-bracketed `insert_batch`: its WAL's
    /// durable LSN after the sub-batch was forced.
    Durable(storage::Lsn),
    /// A shard's recovery outcome (`ShardedPioEngine::recover`).
    Recovered(pio_btree::RecoveryReport),
    /// Operations with no payload (`insert_batch`, `checkpoint`).
    Unit,
}

/// A closure a shard worker runs on its exclusively locked tree.
pub(crate) type ShardTask = Box<dyn FnOnce(&mut PioBTree) -> IoResult<TaskOutput> + Send>;

/// What a worker observed while running a task.
pub(crate) enum TaskVerdict {
    Finished(IoResult<TaskOutput>),
    Panicked(String),
}

/// Why a fan-out failed as a whole.
pub(crate) enum FanError {
    Io(IoError),
    Panicked(String),
}

type FanReply = Result<Vec<(usize, TaskOutput)>, FanError>;

/// Messages the scheduler's single event loop consumes.
pub(crate) enum SchedMsg {
    /// A new fan-out: `tasks` pairs shard indices with their work.
    Fan {
        tasks: Vec<(usize, ShardTask)>,
        reply: Sender<FanReply>,
    },
    /// A worker finished one task.
    Done {
        call: u64,
        shard: usize,
        verdict: TaskVerdict,
        io_delta_us: f64,
    },
    /// Stop the scheduler (and with it, the workers).
    Shutdown,
}

enum WorkerMsg {
    Run { call: u64, task: ShardTask },
    Shutdown,
}

/// One in-flight fan-out, keyed by call id in the scheduler's table.
struct PendingCall {
    remaining: usize,
    /// `(shard index, output)` of every finished task, sorted before replying.
    results: Vec<(usize, TaskOutput)>,
    /// Lowest-shard-index failure observed so far (deterministic error choice).
    error: Option<(usize, FanError)>,
    /// Maximum per-shard simulated-I/O delta — the call's schedule makespan.
    max_delta_us: f64,
    reply: Sender<FanReply>,
}

/// Handle owning the scheduler thread (which in turn owns the workers).
pub(crate) struct SchedulerPool {
    tx: Sender<SchedMsg>,
    handle: Option<JoinHandle<()>>,
}

impl SchedulerPool {
    /// Whether the scheduler thread is alive (true until drop).
    pub(crate) fn is_running(&self) -> bool {
        self.handle.is_some()
    }

    /// Spawns the per-shard workers and the scheduler event loop. Returns the pool
    /// handle plus a sender the engine stores for issuing fan-outs.
    pub(crate) fn spawn(inner: &Arc<EngineInner>) -> (Self, Sender<SchedMsg>) {
        let (sched_tx, sched_rx) = channel::<SchedMsg>();
        let workers: Vec<(Sender<WorkerMsg>, JoinHandle<()>)> = (0..inner.shard_count())
            .map(|shard| {
                let (tx, rx) = channel::<WorkerMsg>();
                let inner = Arc::clone(inner);
                let done_tx = sched_tx.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("engine-shard-{shard}"))
                    .spawn(move || worker_loop(inner, shard, rx, done_tx))
                    .expect("spawn shard worker");
                (tx, handle)
            })
            .collect();
        let sched_inner = Arc::clone(inner);
        let handle = std::thread::Builder::new()
            .name("engine-scheduler".into())
            .spawn(move || scheduler_loop(sched_inner, sched_rx, workers))
            .expect("spawn engine scheduler");
        (
            Self {
                tx: sched_tx.clone(),
                handle: Some(handle),
            },
            sched_tx,
        )
    }
}

impl Drop for SchedulerPool {
    fn drop(&mut self) {
        let _ = self.tx.send(SchedMsg::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: Arc<EngineInner>, shard: usize, rx: Receiver<WorkerMsg>, done_tx: Sender<SchedMsg>) {
    while let Ok(msg) = rx.recv() {
        let WorkerMsg::Run { call, task } = msg else { return };
        let mut tree = inner.shard_tree(shard).lock();
        let before = tree.io_elapsed_us();
        let verdict = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(&mut tree))) {
            Ok(result) => TaskVerdict::Finished(result),
            Err(panic) => TaskVerdict::Panicked(panic_message(&panic)),
        };
        // Charge even on error: any partially performed I/O is in the shard's
        // elapsed time and the makespan must stay in lockstep with it.
        let io_delta_us = tree.io_elapsed_us() - before;
        drop(tree);
        if done_tx
            .send(SchedMsg::Done {
                call,
                shard,
                verdict,
                io_delta_us,
            })
            .is_err()
        {
            return;
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn scheduler_loop(inner: Arc<EngineInner>, rx: Receiver<SchedMsg>, workers: Vec<(Sender<WorkerMsg>, JoinHandle<()>)>) {
    let mut next_call = 0u64;
    let mut pending: HashMap<u64, PendingCall> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            SchedMsg::Fan { tasks, reply } => {
                let call = next_call;
                next_call += 1;
                pending.insert(
                    call,
                    PendingCall {
                        remaining: tasks.len(),
                        results: Vec::with_capacity(tasks.len()),
                        error: None,
                        max_delta_us: 0.0,
                        reply,
                    },
                );
                for (shard, task) in tasks {
                    if workers[shard].0.send(WorkerMsg::Run { call, task }).is_err() {
                        let entry = pending.get_mut(&call).expect("inserted above");
                        entry.remaining -= 1;
                        note_error(
                            entry,
                            shard,
                            FanError::Io(IoError::WorkerFailed(format!("shard {shard} worker is gone"))),
                        );
                    }
                }
                finish_if_complete(&inner, &mut pending, call);
            }
            SchedMsg::Done {
                call,
                shard,
                verdict,
                io_delta_us,
            } => {
                let entry = pending.get_mut(&call).expect("completion for unknown call");
                entry.remaining -= 1;
                entry.max_delta_us = entry.max_delta_us.max(io_delta_us);
                match verdict {
                    TaskVerdict::Finished(Ok(output)) => entry.results.push((shard, output)),
                    TaskVerdict::Finished(Err(e)) => note_error(entry, shard, FanError::Io(e)),
                    TaskVerdict::Panicked(msg) => note_error(entry, shard, FanError::Panicked(msg)),
                }
                finish_if_complete(&inner, &mut pending, call);
            }
            SchedMsg::Shutdown => break,
        }
    }
    // Stop the workers and join them: queued Run messages are drained first
    // (channels are FIFO), so no task is abandoned mid-flight and no worker
    // outlives the engine.
    for (tx, _) in &workers {
        let _ = tx.send(WorkerMsg::Shutdown);
    }
    for (tx, handle) in workers {
        drop(tx);
        let _ = handle.join();
    }
}

/// Keeps the lowest-shard-index failure, so the surfaced error is deterministic
/// even though completions arrive in arbitrary order.
fn note_error(entry: &mut PendingCall, shard: usize, error: FanError) {
    if entry.error.as_ref().is_none_or(|&(s, _)| shard < s) {
        entry.error = Some((shard, error));
    }
}

/// When a call's last completion has landed: charge its makespan, order the
/// results by shard index, and wake the caller.
fn finish_if_complete(inner: &Arc<EngineInner>, pending: &mut HashMap<u64, PendingCall>, call: u64) {
    let done = pending.get(&call).is_some_and(|p| p.remaining == 0);
    if !done {
        return;
    }
    let mut entry = pending.remove(&call).expect("checked above");
    inner.charge(entry.max_delta_us);
    inner.note_scheduled_batch();
    let outcome = match entry.error {
        Some((_, error)) => Err(error),
        None => {
            entry.results.sort_by_key(|&(shard, _)| shard);
            Ok(entry.results)
        }
    };
    // A caller that gave up (disconnected) is not an error for the scheduler.
    let _ = entry.reply.send(outcome);
}

impl EngineInner {
    /// Dispatches one fan-out through the scheduler and blocks for its outcome.
    /// Results come back ordered by shard index. A worker panic is re-raised here,
    /// on the calling thread, preserving the old scoped-thread semantics.
    pub(crate) fn fan_out_tasks(&self, work: Vec<(usize, ShardTask)>) -> IoResult<Vec<(usize, TaskOutput)>> {
        if work.is_empty() {
            return Ok(Vec::new());
        }
        let (reply_tx, reply_rx) = channel();
        self.scheduler()
            .send(SchedMsg::Fan {
                tasks: work,
                reply: reply_tx,
            })
            .map_err(|_| IoError::WorkerFailed("engine scheduler is gone".into()))?;
        match reply_rx.recv() {
            Ok(Ok(results)) => Ok(results),
            Ok(Err(FanError::Io(e))) => Err(e),
            Ok(Err(FanError::Panicked(msg))) => panic!("shard worker panicked: {msg}"),
            Err(_) => Err(IoError::WorkerFailed("engine scheduler dropped the call".into())),
        }
    }
}
