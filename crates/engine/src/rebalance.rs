//! Elastic shard management: crash-recoverable split/merge and live leaf
//! migration under traffic.
//!
//! Shard boundaries are chosen once, from a key sample, at build time. An
//! append-heavy or skew-shifting workload then piles into one shard forever
//! while the rest of the device's channels idle — exactly the internal
//! parallelism the engine exists to exploit. This module closes the loop:
//!
//! * a **load monitor** tracks per-shard routed operations and OPQ queue
//!   pressure (the same counters surfaced as
//!   [`ShardSnapshot::routed_ops`](crate::ShardSnapshot::routed_ops) /
//!   [`ShardSnapshot::queue_peak_pct`](crate::ShardSnapshot::queue_peak_pct),
//!   but on an independent window so external `stats()` readers don't steal
//!   the balancer's signal);
//! * a **policy** ([`plan`]) decides when to *split* a hot shard at its median
//!   key into a colder neighbour, or *merge* a cold shard's range into an
//!   adjacent one;
//! * a **migration executor** moves the leaf region between the shard stores
//!   as one epoch-logged, crash-recoverable operation while the router keeps
//!   serving reads and writes.
//!
//! # Migration lifecycle
//!
//! Shard boundaries are *non-decreasing*, not strictly increasing: a merged-away
//! shard keeps an empty range `[b, b)` and simply stops receiving traffic, so
//! the shard count (and the worker pool) stays fixed while the *key ownership*
//! is elastic. A migration moves the range `[lo, hi)` between two **adjacent**
//! shards:
//!
//! ```text
//!   install marker        MigrateBegin{src,dst,lo,hi}        MigrateCommit
//!        │                        │                                │
//!  ──────▼────────────────────────▼───────────────┬────────────────▼──────────
//!   routing.write()     forced to engine log      │ routing.write()
//!   (drains in-flight   then phase 1: copy region │ (drains in-flight again)
//!   requests, installs  into dst under the epoch, │ replay dirty tail -> dst
//!   the dirty mirror)   traffic still flowing,    │ retire moved keys <- src
//!                       src authoritative, writes │ force Ack(src,dst)+Commit
//!                       to [lo,hi) also mirrored  │ swap boundary, version+1
//! ```
//!
//! Throughout phase 1 the moving range is **dual-resolved**: the old shard
//! stays authoritative for reads and writes, and every write landing in
//! `[lo, hi)` is additionally mirrored (in tree-lock order) into the
//! migration's dirty log. Phase 2 drains the in-flight requests by taking the
//! routing write lock, replays the mirrored tail onto the destination, retires
//! the moved keys from the source — both bracketed in the shards' WALs under
//! the migration epoch — forces `MigrateCommit`, and swaps the boundary.
//! Requests never error and never stall longer than the phase-2 critical
//! section (one batch application, bounded by the batch budget).
//!
//! Crash anywhere before the `MigrateCommit` force: recovery discards the
//! migration epoch on **both** shards (a migration epoch is never re-driven,
//! even when fully acked — the boundary swap never happened, so the old
//! boundaries must keep governing) and the old boundaries stand. Crash after:
//! recovery replays the epoch normally and re-applies the boundary swap from
//! the `MigrateBegin`/`MigrateCommit` pair. Either way the change is
//! all-or-nothing — `tests/rebalance.rs` sweeps randomized crash points
//! through mid-migration traffic to hold that line.
//!
//! # Using it
//!
//! Policy knobs live in [`EngineConfig::rebalance`](crate::EngineConfig)
//! ([`RebalanceConfig`]); they are validated with the rest of the engine
//! configuration. Call [`ShardedPioEngine::rebalance_once`] from your own
//! control loop, or set [`RebalanceConfig::auto`] to let the background
//! maintenance worker tick the balancer after each sweep. Forced moves for
//! tests and operators: [`ShardedPioEngine::split_shard`] /
//! [`ShardedPioEngine::merge_shard`].

use crate::config::RebalanceConfig;
use crate::sharded::{EngineInner, ShardedPioEngine};
use pio::IoResult;

/// Which way a migration moves keys between two adjacent shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveKind {
    /// Split a hot shard at its median key, moving the upper half to the
    /// right neighbour (`dst == src + 1`).
    SplitUpper,
    /// Split a hot shard at its median key, moving the lower half to the left
    /// neighbour (`dst == src - 1`).
    SplitLower,
    /// Merge: move the source shard's whole range into the neighbour,
    /// leaving the source with an empty range. Forbidden for the last shard
    /// (it owns the `Key::MAX` sentinel, which can never leave it): to fold
    /// the last shard away, merge its left neighbour *into* it instead.
    MergeAll,
}

/// One decided rebalance move, produced by [`plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalancePlan {
    /// Shard keys move out of.
    pub src: usize,
    /// Adjacent shard keys move into.
    pub dst: usize,
    /// Split or merge.
    pub kind: MoveKind,
}

/// What a completed migration did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceOutcome {
    /// Split or merge.
    pub kind: MoveKind,
    /// Shard the keys moved out of.
    pub src: usize,
    /// Shard the keys moved into.
    pub dst: usize,
    /// Inclusive lower bound of the moved range.
    pub lo: u64,
    /// Exclusive upper bound of the moved range.
    pub hi: u64,
    /// Keys retired from the source (moved entries plus mirrored writes).
    pub moved_keys: u64,
    /// The migration's epoch in the engine log (`None` on WAL-less engines,
    /// which migrate without journaling — volatile like the rest of their
    /// state).
    pub epoch: Option<u64>,
}

/// Per-shard input to the [`plan`] policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardLoad {
    /// Operations routed to the shard over the observation window.
    pub routed_ops: u64,
    /// Peak OPQ fill over the window, percent of capacity.
    pub queue_peak_pct: u64,
    /// Whether the shard's key range is currently empty (`[b, b)` — already
    /// merged away). Empty shards are preferred merge sources (nothing to
    /// move) and never split.
    pub range_empty: bool,
}

/// The pure rebalance policy: decides at most one move from a window of
/// per-shard loads. Deterministic and side-effect free, so tests can probe it
/// directly.
///
/// * **Split** when the hottest shard's routed share exceeds
///   [`RebalanceConfig::hot_factor`] × the fair share — or when its OPQ peaked
///   above [`RebalanceConfig::hot_queue_pct`] while carrying at least a fair
///   share — cutting at the median key into whichever valid neighbour saw
///   less traffic.
/// * **Merge** when the coldest adjacent pair's combined share falls below
///   [`RebalanceConfig::cold_factor`] × the fair share, emptying the colder
///   member into the other (never emptying the last shard — its left
///   neighbour merges into it instead).
/// * **Hold** otherwise, and always when the window carried fewer than
///   [`RebalanceConfig::min_window_ops`] operations (too little signal).
pub fn plan(loads: &[ShardLoad], config: &RebalanceConfig) -> Option<RebalancePlan> {
    let n = loads.len();
    if n < 2 {
        return None;
    }
    let total: u64 = loads.iter().map(|l| l.routed_ops).sum();
    if total < config.min_window_ops {
        return None;
    }
    let fair = total as f64 / n as f64;
    // Split the hottest shard if it is overloaded.
    let (hot, hottest) = loads
        .iter()
        .enumerate()
        .max_by_key(|(_, l)| l.routed_ops)
        .expect("n >= 2");
    let overloaded = hottest.routed_ops as f64 > config.hot_factor * fair
        || (hottest.queue_peak_pct >= config.hot_queue_pct && hottest.routed_ops as f64 >= fair);
    if overloaded && !hottest.range_empty {
        // Prefer the neighbour that saw less traffic; ties go to the upper
        // one (append-heavy workloads grow rightward, so pushing the upper
        // half right meets the growth).
        let upper = (hot + 1 < n).then(|| (hot + 1, MoveKind::SplitUpper));
        let lower = (hot > 0).then(|| (hot - 1, MoveKind::SplitLower));
        let (dst, kind) = match (upper, lower) {
            (Some((u, uk)), Some((l, lk))) => {
                if loads[l].routed_ops < loads[u].routed_ops {
                    (l, lk)
                } else {
                    (u, uk)
                }
            }
            (Some(pick), None) | (None, Some(pick)) => pick,
            (None, None) => return None,
        };
        return Some(RebalancePlan { src: hot, dst, kind });
    }
    // Merge the coldest adjacent pair if it is (jointly) underloaded.
    let (i, pair_ops) = (0..n - 1)
        .map(|i| (i, loads[i].routed_ops + loads[i + 1].routed_ops))
        .min_by_key(|&(_, ops)| ops)?;
    if (pair_ops as f64) < config.cold_factor * fair {
        // Empty the colder member into the other; a member whose range is
        // already empty would be a no-op move, so it must be the *source*
        // (which the executor then skips) — prefer the non-empty partner as
        // destination. The last shard can never be the source.
        let (a, b) = (i, i + 1);
        let a_colder = loads[a].range_empty || (!loads[b].range_empty && loads[a].routed_ops <= loads[b].routed_ops);
        let (src, dst) = if a_colder { (a, b) } else { (b, a) };
        if loads[src].range_empty {
            return None; // nothing left to merge here
        }
        let (src, dst) = if src == n - 1 { (dst, src) } else { (src, dst) };
        return Some(RebalancePlan {
            src,
            dst,
            kind: MoveKind::MergeAll,
        });
    }
    None
}

impl EngineInner {
    /// One balancer tick: observe the window, plan, and execute at most one
    /// migration. Used by [`ShardedPioEngine::rebalance_once`] and, when
    /// [`RebalanceConfig::auto`] is set, by the background maintenance worker.
    pub(crate) fn auto_rebalance_tick(&self) -> IoResult<Option<RebalanceOutcome>> {
        let window = self.rebalance_window();
        let peaks = self.queue_peaks();
        let bounds = self.bounds_snapshot();
        let n = window.len();
        let loads: Vec<ShardLoad> = (0..n)
            .map(|i| {
                let (lo, hi) = crate::sharded::shard_range(&bounds, i, n);
                ShardLoad {
                    routed_ops: window[i],
                    queue_peak_pct: peaks[i],
                    range_empty: lo >= hi,
                }
            })
            .collect();
        let Some(plan) = plan(&loads, &self.engine_config().rebalance) else {
            return Ok(None);
        };
        self.migrate(plan.src, plan.dst, plan.kind)
    }
}

impl ShardedPioEngine {
    /// Runs one rebalance decision cycle: reads the load window accumulated
    /// since the previous call, asks the [`plan`] policy for a move, and — if
    /// one is due — executes the migration, blocking until it commits (or
    /// proves vacuous). Returns what moved, `Ok(None)` when balanced.
    ///
    /// Reads and writes keep flowing on every shard while this runs; see the
    /// [module docs](self) for the lifecycle and crash-consistency contract.
    pub fn rebalance_once(&self) -> IoResult<Option<RebalanceOutcome>> {
        self.inner().auto_rebalance_tick()
    }

    /// Forces a median-key split of shard `src` into an adjacent neighbour
    /// (the upper one when it exists), regardless of load. Returns `Ok(None)`
    /// if the shard holds fewer than two entries (nothing to split).
    pub fn split_shard(&self, src: usize) -> IoResult<Option<RebalanceOutcome>> {
        let n = self.shard_count();
        if n < 2 || src >= n {
            return Ok(None);
        }
        let (dst, kind) = if src + 1 < n {
            (src + 1, MoveKind::SplitUpper)
        } else {
            (src - 1, MoveKind::SplitLower)
        };
        self.inner().migrate(src, dst, kind)
    }

    /// Forces shard `src`'s whole range to merge into the adjacent shard
    /// `dst`, regardless of load. Returns `Ok(None)` if the range is already
    /// empty, and an error for non-adjacent pairs or an attempt to merge the
    /// last shard away (it owns the `Key::MAX` sentinel).
    pub fn merge_shard(&self, src: usize, dst: usize) -> IoResult<Option<RebalanceOutcome>> {
        self.inner().migrate(src, dst, MoveKind::MergeAll)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> RebalanceConfig {
        RebalanceConfig::default()
    }

    fn loads(ops: &[u64]) -> Vec<ShardLoad> {
        ops.iter()
            .map(|&routed_ops| ShardLoad {
                routed_ops,
                ..ShardLoad::default()
            })
            .collect()
    }

    #[test]
    fn holds_below_the_window_floor() {
        let cfg = config();
        let window = loads(&[cfg.min_window_ops - 1, 0, 0, 0]);
        assert_eq!(plan(&window, &cfg), None, "too little signal to act on");
    }

    #[test]
    fn holds_when_balanced() {
        let window = loads(&[1000, 900, 1100, 1000]);
        assert_eq!(plan(&window, &config()), None);
    }

    #[test]
    fn splits_a_hot_shard_into_the_colder_neighbour() {
        let window = loads(&[100, 4000, 50, 100]);
        let plan = plan(&window, &config()).expect("shard 1 is hot");
        assert_eq!(plan.src, 1);
        assert_eq!(plan.dst, 2, "right neighbour saw less traffic than left");
        assert_eq!(plan.kind, MoveKind::SplitUpper);
    }

    #[test]
    fn splits_the_last_shard_downward() {
        let window = loads(&[100, 50, 4000]);
        let plan = plan(&window, &config()).expect("last shard is hot");
        assert_eq!((plan.src, plan.dst), (2, 1));
        assert_eq!(plan.kind, MoveKind::SplitLower);
    }

    #[test]
    fn queue_pressure_alone_can_trigger_a_split() {
        let cfg = config();
        let mut window = loads(&[1500, 1000, 1000, 1000]);
        assert_eq!(plan(&window, &cfg), None, "share alone is not hot enough");
        window[0].queue_peak_pct = cfg.hot_queue_pct;
        let decided = plan(&window, &cfg).expect("pressure breaks the tie");
        assert_eq!((decided.src, decided.kind), (0, MoveKind::SplitUpper));
    }

    #[test]
    fn merges_a_cold_pair_emptying_the_colder_member() {
        let window = loads(&[3000, 10, 40, 3000]);
        let plan = plan(&window, &config()).expect("pair (1,2) is cold");
        assert_eq!((plan.src, plan.dst), (1, 2), "colder member is the source");
        assert_eq!(plan.kind, MoveKind::MergeAll);
    }

    #[test]
    fn never_merges_the_last_shard_away() {
        // The cold pair is (2, 3) with 3 colder — but 3 owns Key::MAX, so the
        // move flips: 2 merges into 3.
        let window = loads(&[3000, 3000, 40, 10]);
        let plan = plan(&window, &config()).expect("tail pair is cold");
        assert_eq!((plan.src, plan.dst), (2, 3));
    }

    #[test]
    fn an_already_empty_source_is_a_hold() {
        let mut window = loads(&[3000, 0, 60, 3000]);
        window[1].range_empty = true;
        assert_eq!(plan(&window, &config()), None, "nothing left to move");
    }

    #[test]
    fn empty_ranges_are_never_split() {
        let mut window = loads(&[9000, 10, 20, 30]);
        window[0].range_empty = true;
        // Shard 0 is "hot" by share but owns no keys (all its traffic was
        // misses); the policy falls through to the merge check.
        let decided = plan(&window, &config());
        assert!(decided.is_none_or(|p| p.kind == MoveKind::MergeAll), "{decided:?}");
    }
}
