//! Aggregated statistics of a [`crate::ShardedPioEngine`].

use btree::Key;
use pio_btree::PioStats;
use storage::{BufferPoolStats, IntegrityStats, LeafCacheStats, StoreStats};

/// A point-in-time snapshot of one shard.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Shard index (position in key order).
    pub shard: usize,
    /// Inclusive lower bound of the shard's key range.
    pub key_lo: Key,
    /// Exclusive upper bound of the shard's key range (`Key::MAX` means the shard
    /// also owns `Key::MAX` itself).
    pub key_hi: Key,
    /// Tree height in levels.
    pub height: usize,
    /// Resolved ticket-pipeline depth of the shard tree's batched hot paths
    /// (`Auto` resolves against the shard's provisioned backend, so custom
    /// topologies may differ per shard).
    pub pipeline_depth: usize,
    /// Operations currently buffered in the shard's OPQ.
    pub opq_len: usize,
    /// OPQ capacity in entries.
    pub opq_capacity: usize,
    /// Point-request sub-batches this shard received through the engine's
    /// batched entry points (`multi_search` / `insert_batch`).
    pub batched_calls: u64,
    /// Point requests those sub-batches carried in total;
    /// `batched_ops / batched_calls` is the shard's average batch occupancy.
    pub batched_ops: u64,
    /// Requests routed to this shard (reads and writes alike, batched or not)
    /// since the previous [`crate::ShardedPioEngine::stats`] snapshot — the
    /// load half of the rebalancer's per-shard signal. Reset on read.
    pub routed_ops: u64,
    /// Peak OPQ fill observed after any write since the previous snapshot, as
    /// a percentage of capacity — the queue-pressure half of the rebalancer's
    /// signal. Reset on read.
    pub queue_peak_pct: u64,
    /// The shard tree's operation counters.
    pub pio: PioStats,
    /// Buffer-pool counters of the shard's cached store.
    pub pool: BufferPoolStats,
    /// Scan-resistant leaf-cache counters of the shard's cached store (all
    /// zero when [`crate::EngineConfig::leaf_cache_bytes`] is unset). The
    /// shard's inner-tier counters ride in [`ShardSnapshot::pio`].
    pub leaf_cache: LeafCacheStats,
    /// Page-store counters (psync batches, page reads/writes, allocation).
    pub store: StoreStats,
    /// Simulated I/O time this shard's store has consumed, µs.
    pub io_elapsed_us: f64,
    /// Logical WAL bytes a recovery of this shard would still scan (durable
    /// minus truncated; 0 without a WAL). Checkpoint-anchored truncation keeps
    /// this proportional to activity since the shard's last checkpoint.
    pub wal_replayable_bytes: u64,
    /// Whether the shard's health breaker is open: writes are being rejected
    /// with a retryable error until a maintenance probe heals the device.
    pub degraded: bool,
    /// Device-class failures observed in a row on the shard's foreground path
    /// (reset by any success; the breaker opens at 3).
    pub consecutive_failures: u64,
    /// Times this shard's breaker opened over the engine's lifetime.
    pub breaker_opens: u64,
    /// Times a maintenance probe closed this shard's breaker.
    pub breaker_closes: u64,
    /// Checksum-corruption errors this shard's foreground path returned.
    pub corruption_errors: u64,
    /// Page-checksum counters of the shard's store: verify failures and
    /// recoveries on the read path, plus background-scrub progress.
    pub integrity: IntegrityStats,
    /// Batches the shard's resilient I/O wrapper resubmitted after a
    /// transient failure (0 when [`crate::EngineConfig::retry_limit`] is 0).
    pub io_retries: u64,
    /// Attempts the wrapper abandoned after the retry budget or deadline ran
    /// out — each one surfaced to the caller as a retryable timeout.
    pub io_give_ups: u64,
}

/// Roll-up of every shard plus engine-level schedule accounting.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Name of the storage topology the shards were provisioned on
    /// (`device-per-shard`, `shared-device`, `real-files`, …).
    pub topology: &'static str,
    /// Per-shard snapshots, in key order.
    pub shards: Vec<ShardSnapshot>,
    /// Sum of all shards' operation counters.
    pub rollup: PioStats,
    /// Sum of all shards' simulated I/O time, µs — the *device work* performed.
    pub total_io_us: f64,
    /// Schedule makespan, µs: per engine call, the participating shards issue their
    /// psync streams concurrently, so the call costs the *maximum* of the per-shard
    /// times; this field accumulates those maxima. With one shard it equals
    /// `total_io_us`; the gap between the two is the engine's I/O overlap win.
    pub scheduled_io_us: f64,
    /// Fan-outs dispatched through the persistent scheduler (batched calls and
    /// maintenance passes). Single-key operations bypass the scheduler and are not
    /// counted here.
    pub scheduled_batches: u64,
    /// Point-request sub-batches landed on shards through `multi_search` /
    /// `insert_batch` (sum over shards; each fan-out contributes one sub-batch
    /// per participating shard).
    pub batched_calls: u64,
    /// Point requests those sub-batches carried in total — the engine-level
    /// ground truth behind any front end's batch-occupancy metric (see
    /// [`EngineStats::avg_batch_occupancy`]).
    pub batched_ops: u64,
    /// Largest resolved ticket-pipeline depth across the shards (every shard's
    /// own value is in its [`ShardSnapshot::pipeline_depth`]; on the shipped
    /// topologies all shards resolve identically).
    pub pipeline_depth: usize,
    /// Aggregate buffer-pool hit ratio across shards in `[0, 1]`.
    pub pool_hit_ratio: f64,
    /// Sum of all shards' scan-resistant leaf-cache counters (all zero when
    /// [`crate::EngineConfig::leaf_cache_bytes`] is unset).
    pub leaf_cache: LeafCacheStats,
    /// Total operations buffered in shard OPQs.
    pub queued_ops: usize,
    /// Cross-shard flush epochs committed (one per `insert_batch` with WALs
    /// enabled, plus epochs completed by recovery).
    pub committed_epochs: u64,
    /// Uncommitted epochs that recovery found durable on every member shard and
    /// re-drove (committed).
    pub recovered_epochs: u64,
    /// Uncommitted epochs that recovery discarded on every member shard.
    pub discarded_epochs: u64,
    /// Hot shards split at a median key since the engine was built (see the
    /// `rebalance` module).
    pub splits: u64,
    /// Cold shard ranges merged into a neighbour since the engine was built.
    pub merges: u64,
    /// Keys moved between shards by migrations in total.
    pub migrated_keys: u64,
    /// Migrations whose `MigrateCommit` recovery found durable and whose
    /// boundary swap it re-applied.
    pub committed_migrations: u64,
    /// Uncommitted migrations recovery rolled back (discarded on both shards;
    /// a migration epoch is never re-driven).
    pub rolled_back_migrations: u64,
    /// Whether a shard migration was in flight when this snapshot was taken
    /// (shard key ranges then overlap transiently; the old shard stays
    /// authoritative until commit).
    pub active_migration: bool,
    /// Bumped on every boundary change; front ends compare it across
    /// snapshots to notice a rebalance without diffing bound vectors.
    pub routing_version: u64,
    /// Checkpoints completed over the engine's lifetime (foreground calls and
    /// the maintenance worker's `checkpoint_interval_ms` ticks alike).
    pub checkpoints: u64,
    /// Logical log bytes dropped by checkpoint-anchored truncation over the
    /// lifetime, across the shard WALs and the engine epoch log.
    pub truncated_bytes: u64,
    /// Log records scanned by the most recent
    /// [`crate::ShardedPioEngine::recover`] (every shard's WAL analysis pass
    /// plus the epoch-log scan; 0 before any recovery). The bounded-recovery
    /// observable: with checkpointing active it tracks the work done since the
    /// last checkpoint, not the engine's age.
    pub recovery_replayed_records: u64,
    /// Logical bytes a recovery would still scan in the engine epoch log
    /// (0 without WALs).
    pub epoch_log_bytes: u64,
    /// Shards whose health breaker is currently open (degraded: writes
    /// rejected with a retryable error until a maintenance probe heals them).
    pub degraded_shards: usize,
    /// Breaker-open events across all shards, lifetime.
    pub breaker_opens: u64,
    /// Breaker-close (probe-healed) events across all shards, lifetime.
    pub breaker_closes: u64,
    /// Sum of all shards' page-checksum counters (read-verify failures and
    /// recoveries, scrub progress and heals).
    pub integrity: IntegrityStats,
    /// Batches resubmitted by the shards' resilient I/O wrappers after
    /// transient failures, summed.
    pub io_retries: u64,
    /// Attempts those wrappers abandoned (retry budget or deadline exhausted),
    /// summed.
    pub io_give_ups: u64,
    /// Maintenance passes that flushed at least one shard.
    pub maintenance_flushes: u64,
    /// Background maintenance passes that failed with an I/O error. A non-zero
    /// value means some shard's flush failed off the foreground path; the batch
    /// stays queued, but partially applied node writes may need WAL recovery.
    pub maintenance_errors: u64,
    /// Message of the most recent background maintenance error, if any.
    pub last_maintenance_error: Option<String>,
}

impl EngineStats {
    /// `total_io_us / scheduled_io_us`: the effective cross-shard I/O overlap
    /// factor (1.0 = fully serialised, `shards` = perfect overlap).
    pub fn overlap_factor(&self) -> f64 {
        if self.scheduled_io_us <= 0.0 {
            return 1.0;
        }
        self.total_io_us / self.scheduled_io_us
    }

    /// Total logical log bytes a full engine recovery would still scan: every
    /// shard's replayable WAL bytes plus the engine epoch log's. The quantity
    /// checkpoint-anchored truncation bounds.
    pub fn replayable_log_bytes(&self) -> u64 {
        self.epoch_log_bytes + self.shards.iter().map(|s| s.wal_replayable_bytes).sum::<u64>()
    }

    /// Average point requests per per-shard sub-batch across the engine's
    /// lifetime (`batched_ops / batched_calls`; 0.0 before the first batched
    /// call). A service front end coalescing independent requests should report
    /// an occupancy that matches this engine-level measurement.
    pub fn avg_batch_occupancy(&self) -> f64 {
        if self.batched_calls == 0 {
            return 0.0;
        }
        self.batched_ops as f64 / self.batched_calls as f64
    }

    /// Fraction of descent probes the pinned inner tier answered without any
    /// store I/O, across all shards (`rollup.inner_tier_hits / (hits+misses)`;
    /// 0.0 when the tier is disabled or never probed).
    pub fn inner_tier_hit_rate(&self) -> f64 {
        let total = self.rollup.inner_tier_hits + self.rollup.inner_tier_misses;
        if total == 0 {
            return 0.0;
        }
        self.rollup.inner_tier_hits as f64 / total as f64
    }

    /// Aggregate scan-resistant leaf-cache hit ratio across shards (point
    /// lookups only — scan-hinted traffic is excluded by construction; 0.0
    /// when the cache is disabled or never probed).
    pub fn leaf_cache_hit_rate(&self) -> f64 {
        self.leaf_cache.hit_ratio()
    }
}
