//! One construction path for every engine: [`EngineBuilder`].
//!
//! Historically the engine grew five constructors (`create`, `bulk_load`,
//! `bulk_load_with_sample`, and `_with_backends` variants bolted on as a
//! test-only seam) — none of which could say *where* the shards live. The
//! builder collapses them into one fluent path over a pluggable
//! [`ShardProvisioner`] topology:
//!
//! ```
//! use engine::{DevicePerShard, EngineBuilder, EngineConfig, SharedDevice};
//!
//! let entries: Vec<(u64, u64)> = (0..10_000).map(|k| (k, k * 10)).collect();
//! // Today's behaviour: one simulated device per shard (the default topology).
//! let per_shard = EngineBuilder::new(EngineConfig::default())
//!     .topology(DevicePerShard)
//!     .entries(&entries)
//!     .build()
//!     .unwrap();
//! // The same shards contending on ONE device.
//! let shared = EngineBuilder::new(EngineConfig::default())
//!     .topology(SharedDevice)
//!     .entries(&entries)
//!     .build()
//!     .unwrap();
//! assert_eq!(per_shard.search(42).unwrap(), shared.search(42).unwrap());
//! ```
//!
//! [`EngineBuilder::recover`] is the restart half: for a topology with durable
//! state ([`crate::RealFiles`]), it reopens the persisted manifest, restores
//! every shard's superblock snapshot and replays the WALs.

use crate::config::EngineConfig;
use crate::epoch::EngineRecoveryReport;
use crate::sharded::{boundaries_from_sample, boundaries_from_sorted, ShardedPioEngine};
use crate::topology::{DevicePerShard, ProvisionMode, ShardProvisioner};
use btree::{Key, Value};
use pio::{IoError, IoResult};

/// Builds a [`ShardedPioEngine`] over a storage topology.
///
/// * [`EngineBuilder::topology`] — where the shards live (default:
///   [`DevicePerShard`]).
/// * [`EngineBuilder::key_sample`] — boundary sample for the shard cuts; when
///   absent, the bulk-load entries double as the sample (and with neither, the
///   key space is cut uniformly).
/// * [`EngineBuilder::entries`] — sorted, duplicate-free entries to bulk load
///   (empty for a fresh engine).
/// * [`EngineBuilder::build`] — provision and assemble.
/// * [`EngineBuilder::recover`] — reopen a persisted engine instead (restart
///   path; topologies with a manifest only).
pub struct EngineBuilder<'a> {
    config: EngineConfig,
    topology: Box<dyn ShardProvisioner>,
    key_sample: Option<&'a [Key]>,
    entries: &'a [(Key, Value)],
}

impl std::fmt::Debug for EngineBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineBuilder")
            .field("config", &self.config)
            .field("topology", &self.topology.name())
            .field("key_sample", &self.key_sample.map(<[Key]>::len))
            .field("entries", &self.entries.len())
            .finish()
    }
}

impl<'a> EngineBuilder<'a> {
    /// Starts a builder with the [`DevicePerShard`] topology, no key sample and
    /// no entries.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            topology: Box::new(DevicePerShard),
            key_sample: None,
            entries: &[],
        }
    }

    /// Sets the storage topology the shards are provisioned on.
    pub fn topology(mut self, topology: impl ShardProvisioner + 'static) -> Self {
        self.topology = Box::new(topology);
        self
    }

    /// Sets the boundary sample (pass the expected key population; without it
    /// the bulk-load entries are the sample, and with neither the `u64` space
    /// is cut uniformly).
    pub fn key_sample(mut self, sample: &'a [Key]) -> Self {
        self.key_sample = Some(sample);
        self
    }

    /// Sets the entries to bulk load (sorted, duplicate-free; unsorted input is
    /// a caller bug and panics at [`EngineBuilder::build`]).
    pub fn entries(mut self, entries: &'a [(Key, Value)]) -> Self {
        self.entries = entries;
        self
    }

    /// Provisions the topology and assembles a fresh engine: boundaries are cut
    /// from the sample (or the entries), every shard is bulk loaded onto its
    /// provisioned store, and — for topologies with durable state — the initial
    /// manifest snapshot is persisted.
    ///
    /// An invalid configuration or a provisioner failure is an error; unsorted
    /// entries are a caller bug and panic.
    pub fn build(self) -> IoResult<ShardedPioEngine> {
        self.config.validate().map_err(IoError::InvalidConfig)?;
        ShardedPioEngine::check_sorted(self.entries);
        let bounds = match self.key_sample {
            Some(sample) => boundaries_from_sample(sample, self.config.shards),
            None => boundaries_from_sorted(self.entries.len(), |i| self.entries[i].0, self.config.shards),
        };
        let backends = self.topology.provision(&self.config, ProvisionMode::Create)?;
        ShardedPioEngine::assemble(self.config, self.entries, bounds, backends, self.topology)
    }

    /// Reopens a persisted engine (restart path): loads the topology's
    /// [`crate::EngineManifest`], restores each shard's superblock snapshot
    /// over the existing storage, runs engine-level recovery (epoch verdicts +
    /// per-shard WAL replay) and re-persists the post-recovery manifest.
    /// Returns the engine together with the recovery report.
    ///
    /// Only topologies with durable state support this; [`EngineBuilder::entries`]
    /// and [`EngineBuilder::key_sample`] are ignored (boundaries come from the
    /// manifest). Without a WAL the recovered state is the last clean
    /// checkpoint, and a directory whose dirty marker is still standing
    /// (mutated after the last checkpoint) is **refused** — see
    /// [`crate::RealFiles`].
    pub fn recover(self) -> IoResult<(ShardedPioEngine, EngineRecoveryReport)> {
        self.config.validate().map_err(IoError::InvalidConfig)?;
        let manifest = self.topology.load_manifest()?.ok_or_else(|| {
            IoError::InvalidConfig(format!(
                "topology '{}' has no persisted engine manifest to recover from \
                 (only topologies with durable state, e.g. RealFiles, support recover())",
                self.topology.name()
            ))
        })?;
        // Without a WAL there is nothing to replay, so the manifest snapshot
        // must exactly describe the files: a standing dirty marker means
        // mutations (in-place page rewrites, allocations) happened after the
        // last checkpoint and are unrecoverable — refuse rather than reopen a
        // silently inconsistent mix.
        if !self.config.base.wal_enabled && self.topology.load_dirty()? {
            return Err(IoError::InvalidConfig(format!(
                "topology '{}' was not shut down cleanly (dirty marker present) and the WAL is \
                 disabled, so the manifest snapshot no longer describes the files; checkpoint \
                 before shutdown, or enable the WAL for crash-safe reopen",
                self.topology.name()
            )));
        }
        // Validate before provisioning: a mismatched recover attempt must not
        // touch the topology's storage (RealFiles would otherwise create empty
        // files for the extra shards on its way to the error).
        ShardedPioEngine::validate_manifest(&self.config, &manifest)?;
        let backends = self.topology.provision(&self.config, ProvisionMode::Reopen)?;
        let engine = ShardedPioEngine::reopen(self.config, manifest, backends, self.topology)?;
        let report = engine.recover()?;
        Ok((engine, report))
    }
}
