//! Configuration of the sharded PIO engine.

use pio_btree::PioConfig;
use ssd_sim::DeviceProfile;

/// All tunable parameters of a [`crate::ShardedPioEngine`].
///
/// The buffer-pool budget is a **total** for the whole engine: `base.pool_pages`
/// is divided across the shards, so sweeping the shard count at a fixed
/// configuration compares equal-memory deployments (the pool is where the memory
/// is — megabytes of cached internal nodes). `base.opq_pages`, by contrast, is
/// **per shard**: every shard owns a full-size operation queue, because the whole
/// point of sharding is to multiply the independent OPQ/psync streams, and an OPQ
/// page is tiny (a few KiB of entries) next to the pool. Halving per-shard OPQs as
/// shards grow would shrink every bupdate batch and squander the NCQ window the
/// paper's Figure 3 is built on.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Number of key-range shards (≥ 1).
    pub shards: usize,
    /// Device profile each shard's store simulates a partition of.
    pub profile: DeviceProfile,
    /// Addressable bytes of each shard's store.
    pub shard_capacity_bytes: u64,
    /// Addressable bytes of each WAL device (per-shard WALs and the engine's
    /// epoch log alike). Only used when `base.wal_enabled` is set; must be a
    /// multiple of `base.page_size` (the WAL forces whole pages) and large
    /// enough to hold a meaningful log (at least 64 pages).
    pub wal_capacity_bytes: u64,
    /// Per-tree configuration template. `pool_pages` is the engine-wide total
    /// (divided by `shards` when each tree is built); `opq_pages` is per shard.
    pub base: PioConfig,
    /// Fraction of a shard's OPQ capacity at which the maintenance pass flushes it
    /// (so flushes happen off the caller's critical path instead of at 100% fill).
    pub flush_threshold: f64,
    /// Interval of the background maintenance worker in milliseconds; `None` runs
    /// no worker (maintenance then only happens through explicit
    /// [`crate::ShardedPioEngine::maintain_once`] calls — the deterministic mode
    /// used by tests and benches).
    pub maintenance_interval_ms: Option<u64>,
    /// Interval of the background checkpoint tick in milliseconds: the
    /// maintenance worker runs a full [`crate::ShardedPioEngine::checkpoint`]
    /// (incremental flush + manifest sync + log truncation) whenever this much
    /// time has passed since the last one. `None` (the default) runs no
    /// automatic checkpoints — callers checkpoint explicitly. Requires
    /// [`EngineConfig::maintenance_interval_ms`] to be set (there is no other
    /// thread to drive the cadence).
    pub checkpoint_interval_ms: Option<u64>,
    /// Log-retention floor for checkpoint-anchored truncation, in logical
    /// bytes: a log (each shard WAL, and the engine epoch log) is only
    /// truncated while its replayable tail exceeds this many bytes, so recent
    /// history stays available for post-mortem inspection. `0` (the default)
    /// truncates at every checkpoint. Must stay below `wal_capacity_bytes`
    /// when the WAL is enabled — retaining more than the device holds would
    /// disable truncation entirely.
    pub log_retention_bytes: u64,
    /// Latency budget of the service front end's admission controller, in
    /// microseconds: a request never waits in an open per-shard batch builder
    /// longer than this before the builder is flushed to the engine. Smaller
    /// values trade batch occupancy (and therefore psync width) for latency;
    /// must be at least 1 — a zero budget would degenerate every batch to a
    /// single request and is rejected like `PipelineDepth::Fixed(0)`.
    pub max_batch_delay_us: u64,
    /// Maximum requests a per-shard batch builder accumulates before it is
    /// flushed regardless of the latency budget. Must be at least 1; `1` is the
    /// request-at-a-time baseline (every request flushes immediately,
    /// size-triggered). Values beyond the per-shard OPQ capacity waste no
    /// correctness but stop buying psync width, so keep it near `PioMax`.
    pub max_batch_size: usize,
    /// Knobs of the elastic shard rebalancer (see [`crate::rebalance`]).
    pub rebalance: RebalanceConfig,
    /// Engine-wide memory budget, in bytes, of the pinned in-memory inner-node
    /// tier (divided across shards like the pool; each shard keeps at least one
    /// page). `None` (the default) disables the tier; `Some(0)` is rejected —
    /// spell "off" as `None`. Must be a multiple of `base.page_size`.
    pub inner_tier_bytes: Option<u64>,
    /// Engine-wide memory budget, in bytes, of the scan-resistant leaf-region
    /// cache (divided across shards; at least one page each). `None` (the
    /// default) disables it; `Some(0)` is rejected; must be a multiple of
    /// `base.page_size`.
    pub leaf_cache_bytes: Option<u64>,
    /// Bounded-retry budget of each shard's resilient I/O wrapper
    /// ([`pio::ResilientIo`]): a psync batch that fails with a *retryable*
    /// error (`EINTR`-class transients) is resubmitted up to this many times
    /// with exponential backoff before the attempt is abandoned. `0` disables
    /// the wrapper entirely — every transient error surfaces immediately, the
    /// raw-error mode fault-injection tests use to observe the device.
    pub retry_limit: u32,
    /// Deadline of one logical I/O attempt in microseconds: once the backoff
    /// accrued across retries would exceed this budget, the resilient wrapper
    /// gives up even if `retry_limit` is not yet exhausted. Bounds the tail
    /// latency a stuck device can inflict on one request. Must be non-zero
    /// while `retry_limit` is non-zero.
    pub io_deadline_us: u64,
    /// Interval of the background checksum scrub in milliseconds: every this
    /// often the maintenance worker re-reads and verifies a bounded slice of
    /// each shard's checksummed pages, healing rot from clean pooled copies
    /// where possible. `None` (the default) runs no scrub; requires
    /// [`EngineConfig::maintenance_interval_ms`] (the maintenance worker is
    /// the thread that drives the cadence).
    pub scrub_interval_ms: Option<u64>,
    /// Per-request deadline of the service front end in milliseconds: a
    /// request whose reply does not arrive within this budget fails with a
    /// retryable timeout instead of blocking its client forever. `None` (the
    /// default) waits indefinitely; `Some(0)` is rejected.
    pub request_deadline_ms: Option<u64>,
    /// Bound of the service front end's admission queue, in queued batches:
    /// when the executor backlog reaches this depth, new requests are shed
    /// immediately with a retryable *overloaded* error instead of growing the
    /// queue (and every queued request's latency) without bound. `None` (the
    /// default) admits everything; `Some(0)` is rejected.
    pub admission_queue_limit: Option<usize>,
}

/// Policy knobs of the elastic shard rebalancer (the [`crate::rebalance`]
/// module). Validated as part of [`EngineConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceConfig {
    /// When set, the background maintenance worker runs one rebalance decision
    /// cycle after each sweep (so it only takes effect together with
    /// [`EngineConfig::maintenance_interval_ms`]). Off by default: tests and
    /// benches drive [`crate::ShardedPioEngine::rebalance_once`] explicitly.
    pub auto: bool,
    /// Minimum operations the observation window must carry before the policy
    /// acts at all — below this there is too little signal to distinguish
    /// skew from noise. Must be at least 1.
    pub min_window_ops: u64,
    /// A shard is *hot* (split candidate) when its routed-op share exceeds
    /// this multiple of the fair share (`total / shards`). Must be above 1.0 —
    /// at or below it, the fair share itself would be "hot" and the balancer
    /// would oscillate.
    pub hot_factor: f64,
    /// An adjacent pair is *cold* (merge candidate) when its **combined**
    /// routed-op share falls below this fraction of the fair share. Must be
    /// within (0, 1); keep it well under `hot_factor`'s reciprocal so a
    /// freshly merged shard is not immediately hot again.
    pub cold_factor: f64,
    /// OPQ peak fill (percent of capacity) above which a shard carrying at
    /// least its fair share counts as hot even if `hot_factor` is not reached
    /// — queue pressure flags an overload that routed counts alone understate.
    /// Must be at most 100.
    pub hot_queue_pct: u64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            auto: false,
            min_window_ops: 1024,
            hot_factor: 2.0,
            cold_factor: 0.5,
            hot_queue_pct: 85,
        }
    }
}

impl RebalanceConfig {
    /// Validates the rebalancer knobs.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_window_ops == 0 {
            return Err("rebalance.min_window_ops must be at least 1 (0 would act on an empty window)".into());
        }
        if !(self.hot_factor > 1.0 && self.hot_factor.is_finite()) {
            return Err(format!(
                "rebalance.hot_factor ({}) must be a finite value above 1.0 — at or below the \
                 fair share the balancer would split perfectly balanced shards",
                self.hot_factor
            ));
        }
        if !(self.cold_factor > 0.0 && self.cold_factor < 1.0) {
            return Err(format!(
                "rebalance.cold_factor ({}) must be within (0, 1) — a pair at the fair share is \
                 not cold",
                self.cold_factor
            ));
        }
        if self.hot_queue_pct > 100 {
            return Err(format!(
                "rebalance.hot_queue_pct ({}) is a percentage of OPQ capacity; values above 100 \
                 can never trigger",
                self.hot_queue_pct
            ));
        }
        Ok(())
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            profile: DeviceProfile::P300,
            shard_capacity_bytes: 8 << 30,
            wal_capacity_bytes: 256 << 20,
            base: PioConfig::default(),
            flush_threshold: 0.5,
            maintenance_interval_ms: None,
            checkpoint_interval_ms: None,
            log_retention_bytes: 0,
            max_batch_delay_us: 200,
            max_batch_size: 64,
            rebalance: RebalanceConfig::default(),
            inner_tier_bytes: None,
            leaf_cache_bytes: None,
            retry_limit: 3,
            io_deadline_us: 50_000,
            scrub_interval_ms: None,
            request_deadline_ms: None,
            admission_queue_limit: None,
        }
    }
}

impl EngineConfig {
    /// Starts a builder pre-loaded with the defaults.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }

    /// The per-shard tree configuration: the engine-wide pool budget is divided
    /// evenly across the shards (each shard keeps at least one page so a tiny
    /// budget still yields a valid tree); the OPQ size passes through unchanged —
    /// each shard owns its own full-size queue.
    pub fn shard_config(&self) -> PioConfig {
        let shards = self.shards.max(1) as u64;
        let page = self.base.page_size as u64;
        let mut cfg = self.base.clone();
        cfg.pool_pages = (self.base.pool_pages / shards).max(1);
        // The engine-level byte budgets are authoritative: they override
        // whatever the base template carries, including its 0 default.
        if let Some(bytes) = self.inner_tier_bytes {
            cfg.inner_tier_pages = (bytes / page / shards).max(1);
        }
        if let Some(bytes) = self.leaf_cache_bytes {
            cfg.leaf_cache_pages = (bytes / page / shards).max(1);
        }
        cfg
    }

    /// The retry policy each shard's I/O is wrapped with, or `None` when
    /// `retry_limit` is 0 (the wrapper is skipped entirely). Backoff on the
    /// simulated backends is *accounted, not slept*: it is charged into the
    /// completion's simulated latency, so retries cost simulated time without
    /// stalling the calling thread.
    pub fn retry_policy(&self) -> Option<pio::RetryPolicy> {
        (self.retry_limit > 0).then(|| pio::RetryPolicy {
            retry_limit: self.retry_limit,
            deadline_us: self.io_deadline_us,
            ..pio::RetryPolicy::default()
        })
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("shards must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.flush_threshold) {
            return Err("flush_threshold must be in [0, 1]".into());
        }
        if self.maintenance_interval_ms == Some(0) {
            return Err("maintenance_interval_ms must be at least 1 (0 would busy-spin the worker)".into());
        }
        if self.checkpoint_interval_ms == Some(0) {
            return Err("checkpoint_interval_ms must be at least 1 (0 would checkpoint on every sweep)".into());
        }
        if self.checkpoint_interval_ms.is_some() && self.maintenance_interval_ms.is_none() {
            return Err(
                "checkpoint_interval_ms requires maintenance_interval_ms — the maintenance worker \
                 is the thread that drives the checkpoint cadence"
                    .into(),
            );
        }
        if self.retry_limit > 0 && self.io_deadline_us == 0 {
            return Err(
                "io_deadline_us must be non-zero while retry_limit is non-zero — a zero deadline \
                 would abandon every retried attempt before its first backoff"
                    .into(),
            );
        }
        if self.scrub_interval_ms == Some(0) {
            return Err("scrub_interval_ms must be at least 1 (0 would scrub on every sweep)".into());
        }
        if self.scrub_interval_ms.is_some() && self.maintenance_interval_ms.is_none() {
            return Err(
                "scrub_interval_ms requires maintenance_interval_ms — the maintenance worker is \
                 the thread that drives the scrub cadence"
                    .into(),
            );
        }
        if self.request_deadline_ms == Some(0) {
            return Err(
                "request_deadline_ms must be at least 1 when set — a zero deadline times every \
                 request out before the engine can touch it; use None to wait indefinitely"
                    .into(),
            );
        }
        if self.admission_queue_limit == Some(0) {
            return Err(
                "admission_queue_limit must be at least 1 when set — a zero bound sheds every \
                 request at admission; use None for an unbounded queue"
                    .into(),
            );
        }
        if self.max_batch_delay_us == 0 {
            return Err(
                "max_batch_delay_us must be at least 1 — a zero latency budget would flush every \
                 batch builder before it could coalesce anything"
                    .into(),
            );
        }
        if self.max_batch_size == 0 {
            return Err("max_batch_size must be at least 1 (1 is the request-at-a-time baseline)".into());
        }
        self.rebalance.validate()?;
        let page = self.base.page_size as u64;
        for (name, budget) in [
            ("inner_tier_bytes", self.inner_tier_bytes),
            ("leaf_cache_bytes", self.leaf_cache_bytes),
        ] {
            if let Some(bytes) = budget {
                if bytes == 0 {
                    return Err(format!(
                        "{name} must be non-zero when set — a zero budget caches nothing; \
                         use None to disable it explicitly"
                    ));
                }
                if !bytes.is_multiple_of(page) {
                    return Err(format!(
                        "{name} ({bytes}) must be a multiple of base.page_size ({page}) — the \
                         budget is carved into whole pages per shard"
                    ));
                }
            }
        }
        if self.base.wal_enabled {
            if !self.wal_capacity_bytes.is_multiple_of(page) {
                return Err(format!(
                    "wal_capacity_bytes ({}) must be a multiple of base.page_size ({page}) — the WAL forces whole pages",
                    self.wal_capacity_bytes
                ));
            }
            if self.wal_capacity_bytes < 64 * page {
                return Err(format!(
                    "wal_capacity_bytes ({}) must hold at least 64 pages of {page} bytes",
                    self.wal_capacity_bytes
                ));
            }
            if self.log_retention_bytes >= self.wal_capacity_bytes {
                return Err(format!(
                    "log_retention_bytes ({}) must stay below wal_capacity_bytes ({}) — retaining \
                     more than the device holds would never allow truncation",
                    self.log_retention_bytes, self.wal_capacity_bytes
                ));
            }
        }
        self.base.validate()
    }
}

/// Builder for [`EngineConfig`].
#[derive(Debug, Clone, Default)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Sets the shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Sets the simulated device profile.
    pub fn profile(mut self, profile: DeviceProfile) -> Self {
        self.config.profile = profile;
        self
    }

    /// Sets the per-shard store capacity in bytes.
    pub fn shard_capacity_bytes(mut self, bytes: u64) -> Self {
        self.config.shard_capacity_bytes = bytes;
        self
    }

    /// Sets the per-WAL-device capacity in bytes (shard WALs and the engine's
    /// epoch log; must be a multiple of the page size).
    pub fn wal_capacity_bytes(mut self, bytes: u64) -> Self {
        self.config.wal_capacity_bytes = bytes;
        self
    }

    /// Sets the per-tree configuration template (`pool_pages` is the engine-wide
    /// total; `opq_pages` is per shard).
    pub fn base(mut self, base: PioConfig) -> Self {
        self.config.base = base;
        self
    }

    /// Sets the maintenance flush threshold as a fraction of OPQ capacity.
    pub fn flush_threshold(mut self, fraction: f64) -> Self {
        self.config.flush_threshold = fraction;
        self
    }

    /// Enables the background maintenance worker with the given period.
    pub fn maintenance_interval_ms(mut self, ms: u64) -> Self {
        self.config.maintenance_interval_ms = Some(ms);
        self
    }

    /// Enables the background checkpoint tick with the given period (needs the
    /// maintenance worker: also set
    /// [`EngineConfigBuilder::maintenance_interval_ms`]).
    pub fn checkpoint_interval_ms(mut self, ms: u64) -> Self {
        self.config.checkpoint_interval_ms = Some(ms);
        self
    }

    /// Sets the log-retention floor for checkpoint-anchored truncation.
    pub fn log_retention_bytes(mut self, bytes: u64) -> Self {
        self.config.log_retention_bytes = bytes;
        self
    }

    /// Sets the service front end's admission latency budget in microseconds.
    pub fn max_batch_delay_us(mut self, us: u64) -> Self {
        self.config.max_batch_delay_us = us;
        self
    }

    /// Sets the service front end's batch-size flush trigger.
    pub fn max_batch_size(mut self, requests: usize) -> Self {
        self.config.max_batch_size = requests;
        self
    }

    /// Sets the engine-wide in-memory inner-tier budget in bytes (must be a
    /// non-zero multiple of the page size; skip the call to leave it off).
    pub fn inner_tier_bytes(mut self, bytes: u64) -> Self {
        self.config.inner_tier_bytes = Some(bytes);
        self
    }

    /// Sets the engine-wide scan-resistant leaf-cache budget in bytes (must be
    /// a non-zero multiple of the page size; skip the call to leave it off).
    pub fn leaf_cache_bytes(mut self, bytes: u64) -> Self {
        self.config.leaf_cache_bytes = Some(bytes);
        self
    }

    /// Sets the bounded-retry budget of the resilient I/O wrapper (0 disables
    /// the wrapper).
    pub fn retry_limit(mut self, retries: u32) -> Self {
        self.config.retry_limit = retries;
        self
    }

    /// Sets the per-attempt I/O deadline in microseconds (caps backoff accrued
    /// across retries).
    pub fn io_deadline_us(mut self, us: u64) -> Self {
        self.config.io_deadline_us = us;
        self
    }

    /// Enables the background checksum scrub with the given period (needs the
    /// maintenance worker: also set
    /// [`EngineConfigBuilder::maintenance_interval_ms`]).
    pub fn scrub_interval_ms(mut self, ms: u64) -> Self {
        self.config.scrub_interval_ms = Some(ms);
        self
    }

    /// Sets the service front end's per-request deadline in milliseconds.
    pub fn request_deadline_ms(mut self, ms: u64) -> Self {
        self.config.request_deadline_ms = Some(ms);
        self
    }

    /// Bounds the service front end's admission queue (requests beyond the
    /// bound are shed with a retryable overloaded error).
    pub fn admission_queue_limit(mut self, batches: usize) -> Self {
        self.config.admission_queue_limit = Some(batches);
        self
    }

    /// Replaces the elastic-rebalancer knobs wholesale.
    pub fn rebalance(mut self, rebalance: RebalanceConfig) -> Self {
        self.config.rebalance = rebalance;
        self
    }

    /// Lets the background maintenance worker run the rebalancer after each
    /// sweep (only effective together with a maintenance interval).
    pub fn auto_rebalance(mut self, auto: bool) -> Self {
        self.config.rebalance.auto = auto;
        self
    }

    /// Finalises the configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`EngineConfig::validate`]).
    pub fn build(self) -> EngineConfig {
        if let Err(e) = self.config.validate() {
            panic!("invalid EngineConfig: {e}");
        }
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(EngineConfig::default().validate().is_ok());
    }

    #[test]
    fn shard_config_divides_the_pool_but_not_the_opq() {
        let base = PioConfig::builder().pool_pages(1024).opq_pages(8).build();
        let cfg = EngineConfig::builder().shards(4).base(base).build();
        let per_shard = cfg.shard_config();
        assert_eq!(per_shard.pool_pages, 256);
        assert_eq!(per_shard.opq_pages, 8, "every shard owns a full-size OPQ");
    }

    #[test]
    fn tiny_pool_budgets_keep_at_least_one_page() {
        let base = PioConfig::builder().pool_pages(2).opq_pages(1).build();
        let cfg = EngineConfig::builder().shards(8).base(base).build();
        let per_shard = cfg.shard_config();
        assert_eq!(per_shard.pool_pages, 1);
        assert_eq!(per_shard.opq_pages, 1);
    }

    #[test]
    fn memory_budgets_divide_across_shards_and_override_the_base() {
        let cfg = EngineConfig::builder()
            .shards(4)
            .inner_tier_bytes(4096 * 64)
            .leaf_cache_bytes(4096 * 128)
            .build();
        let per_shard = cfg.shard_config();
        assert_eq!(per_shard.inner_tier_pages, 16);
        assert_eq!(per_shard.leaf_cache_pages, 32);
        // Engine budgets are authoritative over the base template.
        let base = PioConfig::builder().inner_tier_pages(999).build();
        let cfg = EngineConfig::builder()
            .shards(2)
            .base(base)
            .inner_tier_bytes(4096 * 8)
            .build();
        assert_eq!(cfg.shard_config().inner_tier_pages, 4);
        // Unset budgets leave the base template alone (defaults stay off).
        let cfg = EngineConfig::default();
        assert_eq!(cfg.shard_config().inner_tier_pages, 0);
        assert_eq!(cfg.shard_config().leaf_cache_pages, 0);
        // A tiny budget still pins at least one page per shard.
        let cfg = EngineConfig::builder().shards(8).leaf_cache_bytes(4096).build();
        assert_eq!(cfg.shard_config().leaf_cache_pages, 1);
    }

    #[test]
    fn degenerate_memory_budgets_are_rejected() {
        let config = EngineConfig {
            inner_tier_bytes: Some(0),
            ..EngineConfig::default()
        };
        let err = config.validate().unwrap_err();
        assert!(err.contains("inner_tier_bytes must be non-zero"), "{err}");
        assert!(err.contains("use None"), "{err}");
        let config = EngineConfig {
            leaf_cache_bytes: Some(4096 * 2 + 1),
            ..EngineConfig::default()
        };
        let err = config.validate().unwrap_err();
        assert!(err.contains("multiple of base.page_size"), "{err}");
        let config = EngineConfig {
            inner_tier_bytes: Some(4096 * 16),
            leaf_cache_bytes: Some(4096 * 64),
            ..EngineConfig::default()
        };
        assert!(config.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid EngineConfig")]
    fn zero_shards_panics() {
        let _ = EngineConfig::builder().shards(0).build();
    }

    #[test]
    fn wal_capacity_is_validated_against_the_page_size() {
        // 4 KiB pages, WAL enabled (the capacity is only used — and therefore
        // only validated — when the engine logs).
        let wal_config = |wal_capacity_bytes: u64| EngineConfig {
            wal_capacity_bytes,
            base: PioConfig {
                wal_enabled: true,
                ..PioConfig::default()
            },
            ..EngineConfig::default()
        };
        assert!(
            wal_config(4096 * 64).validate().is_ok(),
            "exactly 64 pages is the floor"
        );
        assert!(wal_config(4096 * 64 + 1)
            .validate()
            .unwrap_err()
            .contains("multiple of base.page_size"));
        assert!(wal_config(4096 * 63)
            .validate()
            .unwrap_err()
            .contains("at least 64 pages"));
        // Without the WAL the capacity is never used: any value is accepted.
        let config = EngineConfig {
            wal_capacity_bytes: 0,
            ..EngineConfig::default()
        };
        assert!(config.validate().is_ok(), "no WAL, no WAL device to size");
    }

    #[test]
    fn zero_pipeline_depth_is_rejected_with_a_clear_error() {
        let config = EngineConfig {
            base: PioConfig {
                pipeline_depth: pio_btree::PipelineDepth::Fixed(0),
                ..PioConfig::default()
            },
            ..EngineConfig::default()
        };
        let err = config.validate().unwrap_err();
        assert!(err.contains("pipeline_depth must be at least 1"), "{err}");
    }

    #[test]
    fn degenerate_service_knobs_are_rejected() {
        let config = EngineConfig {
            max_batch_delay_us: 0,
            ..EngineConfig::default()
        };
        let err = config.validate().unwrap_err();
        assert!(err.contains("max_batch_delay_us must be at least 1"), "{err}");
        let config = EngineConfig {
            max_batch_size: 0,
            ..EngineConfig::default()
        };
        let err = config.validate().unwrap_err();
        assert!(err.contains("max_batch_size must be at least 1"), "{err}");
        // The request-at-a-time baseline and a one-microsecond budget are legal.
        let config = EngineConfig {
            max_batch_delay_us: 1,
            max_batch_size: 1,
            ..EngineConfig::default()
        };
        assert!(config.validate().is_ok());
    }

    #[test]
    fn degenerate_rebalance_knobs_are_rejected() {
        let with = |rebalance: RebalanceConfig| EngineConfig {
            rebalance,
            ..EngineConfig::default()
        };
        let err = with(RebalanceConfig {
            hot_factor: 1.0,
            ..RebalanceConfig::default()
        })
        .validate()
        .unwrap_err();
        assert!(err.contains("hot_factor"), "{err}");
        let err = with(RebalanceConfig {
            cold_factor: 1.0,
            ..RebalanceConfig::default()
        })
        .validate()
        .unwrap_err();
        assert!(err.contains("cold_factor"), "{err}");
        let err = with(RebalanceConfig {
            min_window_ops: 0,
            ..RebalanceConfig::default()
        })
        .validate()
        .unwrap_err();
        assert!(err.contains("min_window_ops"), "{err}");
        let err = with(RebalanceConfig {
            hot_queue_pct: 101,
            ..RebalanceConfig::default()
        })
        .validate()
        .unwrap_err();
        assert!(err.contains("hot_queue_pct"), "{err}");
        assert!(with(RebalanceConfig::default()).validate().is_ok());
    }

    #[test]
    fn checkpoint_knobs_are_validated() {
        // A zero interval is as degenerate as a zero maintenance interval.
        let config = EngineConfig {
            maintenance_interval_ms: Some(5),
            checkpoint_interval_ms: Some(0),
            ..EngineConfig::default()
        };
        assert!(config.validate().unwrap_err().contains("checkpoint_interval_ms"));
        // The checkpoint cadence rides on the maintenance worker.
        let config = EngineConfig {
            maintenance_interval_ms: None,
            checkpoint_interval_ms: Some(100),
            ..EngineConfig::default()
        };
        assert!(config
            .validate()
            .unwrap_err()
            .contains("requires maintenance_interval_ms"));
        let config = EngineConfig {
            maintenance_interval_ms: Some(5),
            checkpoint_interval_ms: Some(100),
            ..EngineConfig::default()
        };
        assert!(config.validate().is_ok());
        // Retention must leave the truncation machinery something to do.
        let config = EngineConfig {
            wal_capacity_bytes: 4096 * 64,
            log_retention_bytes: 4096 * 64,
            base: PioConfig {
                wal_enabled: true,
                ..PioConfig::default()
            },
            ..EngineConfig::default()
        };
        assert!(config.validate().unwrap_err().contains("log_retention_bytes"));
        let config = EngineConfig {
            wal_capacity_bytes: 4096 * 64,
            log_retention_bytes: 4096 * 16,
            base: PioConfig {
                wal_enabled: true,
                ..PioConfig::default()
            },
            ..EngineConfig::default()
        };
        assert!(config.validate().is_ok());
        // Without a WAL the retention floor is inert: any value passes.
        let config = EngineConfig {
            log_retention_bytes: u64::MAX,
            ..EngineConfig::default()
        };
        assert!(config.validate().is_ok());
    }

    #[test]
    fn resilience_knobs_are_validated() {
        let config = EngineConfig {
            retry_limit: 2,
            io_deadline_us: 0,
            ..EngineConfig::default()
        };
        assert!(config.validate().unwrap_err().contains("io_deadline_us"));
        // Turning retries off makes the deadline inert.
        let config = EngineConfig {
            retry_limit: 0,
            io_deadline_us: 0,
            ..EngineConfig::default()
        };
        assert!(config.validate().is_ok());
        assert!(config.retry_policy().is_none());
        let config = EngineConfig {
            maintenance_interval_ms: Some(5),
            scrub_interval_ms: Some(0),
            ..EngineConfig::default()
        };
        assert!(config.validate().unwrap_err().contains("scrub_interval_ms"));
        let config = EngineConfig {
            maintenance_interval_ms: None,
            scrub_interval_ms: Some(50),
            ..EngineConfig::default()
        };
        assert!(config
            .validate()
            .unwrap_err()
            .contains("requires maintenance_interval_ms"));
        let config = EngineConfig {
            request_deadline_ms: Some(0),
            ..EngineConfig::default()
        };
        assert!(config.validate().unwrap_err().contains("request_deadline_ms"));
        let config = EngineConfig {
            admission_queue_limit: Some(0),
            ..EngineConfig::default()
        };
        assert!(config.validate().unwrap_err().contains("admission_queue_limit"));
        let config = EngineConfig::builder()
            .retry_limit(5)
            .io_deadline_us(10_000)
            .maintenance_interval_ms(5)
            .scrub_interval_ms(50)
            .request_deadline_ms(250)
            .admission_queue_limit(128)
            .build();
        let policy = config.retry_policy().expect("retries enabled");
        assert_eq!(policy.retry_limit, 5);
        assert_eq!(policy.deadline_us, 10_000);
        assert!(!policy.wall_clock_backoff, "engine backoff is accounted, not slept");
    }

    #[test]
    fn zero_maintenance_interval_is_rejected() {
        let config = EngineConfig {
            maintenance_interval_ms: Some(0),
            ..EngineConfig::default()
        };
        assert!(config.validate().unwrap_err().contains("busy-spin"));
        assert!(EngineConfig {
            maintenance_interval_ms: Some(1),
            ..EngineConfig::default()
        }
        .validate()
        .is_ok());
    }
}
