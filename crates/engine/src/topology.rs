//! Storage topology: where the engine's shards live.
//!
//! The paper's Figure 4(b) evaluation gives each index its own device, but its
//! core claim — internal parallelism of *one* SSD — only shows end-to-end when
//! many shards contend on a single device. This module makes the placement a
//! first-class, pluggable decision instead of a constructor detail:
//! [`ShardProvisioner`] yields every shard's store and WAL [`IoQueue`] (plus the
//! engine's epoch-log backend) as an [`EngineBackends`] bundle, and the
//! [`crate::EngineBuilder`] assembles the same engine over any of them.
//!
//! Three topologies ship:
//!
//! * [`DevicePerShard`] — each shard gets its own simulated device (the historic
//!   behaviour; Figure 4(b)'s one-file-per-index layout taken literally).
//! * [`SharedDevice`] — all shards are disjoint [`pio::PartitionIo`] address
//!   partitions of **one** simulated device, so their in-flight tickets join one
//!   scheduling window and contend for the shared channels and host interface —
//!   the paper's contention story at engine scale.
//! * [`RealFiles`] — one real file per shard (plus WAL files and a persisted
//!   manifest) in a directory, over the persistent-worker
//!   [`pio::FileThreadPoolIo`] backend. The only topology that supports
//!   [`crate::EngineBuilder::recover`]: the manifest snapshot plus the WALs
//!   survive the process.
//!
//! [`EngineBackends`] itself also implements the trait (provisioning hands out
//! clones of its queues), which is how the crash-injection test harness slots
//! its [`pio::FaultIo`]-wrapped backends into the same public builder instead of
//! needing a separate constructor seam.

use crate::config::EngineConfig;
use btree::Key;
use pio::{FileThreadPoolIo, IoError, IoQueue, IoResult, PartitionIo, SimPsyncIo};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The I/O backends of one provisioned engine: one store (and, with the WAL
/// enabled, one WAL) queue per shard plus the engine's epoch-log backend.
///
/// Usually produced by a [`ShardProvisioner`]; hand-built bundles are the
/// crash-injection seam of the recovery test harness (each queue wrapped in a
/// [`pio::FaultIo`] sharing one [`pio::FaultClock`]), and slot into the builder
/// directly because the bundle implements [`ShardProvisioner`] itself.
#[derive(Clone)]
pub struct EngineBackends {
    /// One store backend per shard.
    pub shard_stores: Vec<Arc<dyn IoQueue>>,
    /// One WAL backend per shard (used only when the base config enables the WAL).
    pub shard_wals: Vec<Arc<dyn IoQueue>>,
    /// The engine epoch-log backend (used only when the WAL is enabled).
    pub engine_wal: Option<Arc<dyn IoQueue>>,
}

impl std::fmt::Debug for EngineBackends {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineBackends")
            .field("shard_stores", &self.shard_stores.len())
            .field("shard_wals", &self.shard_wals.len())
            .field("engine_wal", &self.engine_wal.is_some())
            .finish()
    }
}

/// Persisted per-shard tree metadata: the superblock snapshot that lets
/// [`pio_btree::PioBTree::open`] reopen a shard over its existing pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMeta {
    /// Root page id.
    pub root: u64,
    /// Tree height in levels.
    pub height: u64,
    /// The store's allocation frontier (pages handed out).
    pub high_water: u64,
}

/// Persisted engine metadata: everything [`crate::EngineBuilder::recover`] needs
/// to reassemble an engine over existing storage. With WALs enabled the shard
/// snapshots may be stale — per-shard recovery rolls roots and allocation
/// frontiers forward from the logs; without WALs the manifest must describe a
/// cleanly checkpointed engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineManifest {
    /// Number of shards.
    pub shards: usize,
    /// Page size the shard trees were built with.
    pub page_size: usize,
    /// Whether the engine logs (per-shard WALs + epoch log).
    pub wal_enabled: bool,
    /// Boundary keys (length `shards − 1`).
    pub bounds: Vec<Key>,
    /// Per-shard superblock snapshots, in shard order.
    pub shard_meta: Vec<ShardMeta>,
}

impl EngineManifest {
    /// Serialises the manifest into its line-based text form (the build
    /// environment has no serde; the format is a versioned `key=value` list).
    ///
    /// v2 marks the WAL on-disk layout that reserves the first two pages of
    /// every log region for truncation-header slots (record data starts at the
    /// third page). v1 directories — whose WAL records start at byte 0 — are
    /// rejected at decode rather than having their logs silently mis-parsed.
    pub fn encode(&self) -> String {
        let mut out = String::from("pio-engine-manifest v2\n");
        out.push_str(&format!("shards={}\n", self.shards));
        out.push_str(&format!("page_size={}\n", self.page_size));
        out.push_str(&format!("wal={}\n", u8::from(self.wal_enabled)));
        let bounds: Vec<String> = self.bounds.iter().map(|b| b.to_string()).collect();
        out.push_str(&format!("bounds={}\n", bounds.join(",")));
        for (i, m) in self.shard_meta.iter().enumerate() {
            out.push_str(&format!("shard.{i}={},{},{}\n", m.root, m.height, m.high_water));
        }
        out
    }

    /// Parses the text form produced by [`EngineManifest::encode`]. Returns
    /// `None` for unknown versions or malformed content — including v1
    /// manifests, whose WAL regions use the pre-truncation layout this code
    /// can no longer read (see [`EngineManifest::encode`]).
    pub fn decode(text: &str) -> Option<Self> {
        let mut lines = text.lines();
        if lines.next()? != "pio-engine-manifest v2" {
            return None;
        }
        let mut shards = None;
        let mut page_size = None;
        let mut wal = None;
        let mut bounds: Option<Vec<Key>> = None;
        let mut shard_meta: Vec<Option<ShardMeta>> = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=')?;
            match key {
                "shards" => shards = Some(value.parse().ok()?),
                "page_size" => page_size = Some(value.parse().ok()?),
                "wal" => {
                    wal = Some(match value {
                        "0" => false,
                        "1" => true,
                        _ => return None, // keep the decoder uniformly strict
                    })
                }
                "bounds" => {
                    bounds = Some(if value.is_empty() {
                        Vec::new()
                    } else {
                        value.split(',').map(|v| v.parse().ok()).collect::<Option<_>>()?
                    })
                }
                _ => {
                    let idx: usize = key.strip_prefix("shard.")?.parse().ok()?;
                    let mut parts = value.split(',').map(|v| v.parse::<u64>().ok());
                    let meta = ShardMeta {
                        root: parts.next()??,
                        height: parts.next()??,
                        high_water: parts.next()??,
                    };
                    if parts.next().is_some() {
                        return None;
                    }
                    if shard_meta.len() <= idx {
                        shard_meta.resize(idx + 1, None);
                    }
                    shard_meta[idx] = Some(meta);
                }
            }
        }
        let manifest = Self {
            shards: shards?,
            page_size: page_size?,
            wal_enabled: wal?,
            bounds: bounds?,
            shard_meta: shard_meta.into_iter().collect::<Option<_>>()?,
        };
        (manifest.shard_meta.len() == manifest.shards && manifest.bounds.len() + 1 == manifest.shards)
            .then_some(manifest)
    }
}

/// Whether a provisioning call starts a **fresh** engine or reopens an
/// existing one. Topologies with durable state must treat the two differently:
/// a fresh build over a previously used directory has to reset it (drop the
/// old manifest *first*, truncate the data files) so that a crash mid-build
/// can never leave a stale manifest describing partially overwritten files —
/// and so stale WAL bytes from the previous incarnation cannot be salvaged
/// into the new engine's logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvisionMode {
    /// A fresh engine is about to be bulk loaded: existing durable state (old
    /// manifest, dirty marker, file contents) must be discarded.
    Create,
    /// An existing engine is being reopened: open everything exactly as it is.
    Reopen,
}

/// Supplies the storage an engine's shards live on.
///
/// [`crate::EngineBuilder::build`] calls [`ShardProvisioner::provision`] once
/// with the validated configuration; the returned [`EngineBackends`] must hold
/// one store queue per shard and — when `config.base.wal_enabled` — one WAL
/// queue per shard plus the engine epoch-log backend. Topologies with durable
/// state additionally persist an [`EngineManifest`] so
/// [`crate::EngineBuilder::recover`] can reassemble the engine after a restart;
/// purely simulated topologies keep the defaults (no manifest, recovery
/// unsupported).
pub trait ShardProvisioner: Send + Sync {
    /// Short topology name, surfaced through [`crate::EngineStats`].
    fn name(&self) -> &'static str {
        "custom"
    }

    /// Creates (or reopens, per `mode`) the backends for `config.shards` shards.
    fn provision(&self, config: &EngineConfig, mode: ProvisionMode) -> IoResult<EngineBackends>;

    /// Loads the persisted manifest, if this topology keeps one. `Ok(None)`
    /// means "nothing persisted here" — the builder turns that into an error on
    /// the recover path.
    fn load_manifest(&self) -> IoResult<Option<EngineManifest>> {
        Ok(None)
    }

    /// Persists `manifest`. Topologies without durable state ignore it.
    fn save_manifest(&self, manifest: &EngineManifest) -> IoResult<()> {
        let _ = manifest;
        Ok(())
    }

    /// Sets or clears the durable **dirty marker**: the engine raises it before
    /// the first mutation after a checkpoint (or creation) and clears it when a
    /// checkpoint completes, so a restart can tell a clean shutdown from a
    /// crash. Without a WAL this is the only way [`crate::EngineBuilder::recover`]
    /// can know whether the manifest snapshot still describes the files (in-place
    /// page rewrites after the snapshot are otherwise invisible); with a WAL the
    /// marker is informational — replay reconstructs the state either way.
    /// Topologies without durable state ignore it.
    fn set_dirty(&self, dirty: bool) -> IoResult<()> {
        let _ = dirty;
        Ok(())
    }

    /// Reads the persisted dirty marker (`false` for topologies without one).
    fn load_dirty(&self) -> IoResult<bool> {
        Ok(false)
    }
}

/// Every hand-built backend bundle is a provisioner of itself: provisioning
/// hands out clones of its queues (the clones share the underlying backends, so
/// fault clocks armed on them keep working).
impl ShardProvisioner for EngineBackends {
    fn name(&self) -> &'static str {
        "supplied-backends"
    }

    fn provision(&self, _config: &EngineConfig, _mode: ProvisionMode) -> IoResult<EngineBackends> {
        Ok(self.clone())
    }
}

/// One fresh simulated device per shard store and per WAL — today's historic
/// behaviour, and the literal reading of the paper's Figure 4(b) layout: every
/// "index file" behaves like an independent psync stream with its own channels
/// and host interface.
#[derive(Debug, Clone, Copy, Default)]
pub struct DevicePerShard;

impl ShardProvisioner for DevicePerShard {
    fn name(&self) -> &'static str {
        "device-per-shard"
    }

    fn provision(&self, config: &EngineConfig, _mode: ProvisionMode) -> IoResult<EngineBackends> {
        let sim = |capacity: u64| -> Arc<dyn IoQueue> { Arc::new(SimPsyncIo::with_profile(config.profile, capacity)) };
        let wal = config.base.wal_enabled;
        Ok(EngineBackends {
            shard_stores: (0..config.shards).map(|_| sim(config.shard_capacity_bytes)).collect(),
            shard_wals: if wal {
                (0..config.shards).map(|_| sim(config.wal_capacity_bytes)).collect()
            } else {
                Vec::new()
            },
            engine_wal: wal.then(|| sim(config.wal_capacity_bytes)),
        })
    }
}

/// All shards (stores, WALs and the epoch log) as disjoint address partitions
/// of **one** simulated device. Every shard's in-flight tickets join the same
/// scheduling window, so concurrent fan-outs contend for the shared channels,
/// packages and host interface — the configuration that actually exercises the
/// paper's claim about the internal parallelism of a *single* SSD. Per-shard
/// I/O time keeps its attribution through [`PartitionIo`]'s partition-local
/// statistics (a shard's elapsed time includes the queueing it experienced
/// behind its neighbours).
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedDevice;

impl ShardProvisioner for SharedDevice {
    fn name(&self) -> &'static str {
        "shared-device"
    }

    fn provision(&self, config: &EngineConfig, _mode: ProvisionMode) -> IoResult<EngineBackends> {
        let shards = config.shards as u64;
        let wal = config.base.wal_enabled;
        let wal_cap = if wal { config.wal_capacity_bytes } else { 0 };
        // Layout: the shard stores first, then the shard WALs, then the epoch log.
        let total = shards * config.shard_capacity_bytes + shards * wal_cap + wal_cap;
        let device: Arc<dyn IoQueue> = Arc::new(SimPsyncIo::with_profile(config.profile, total));
        let partition = |base: u64, capacity: u64| -> Arc<dyn IoQueue> {
            Arc::new(PartitionIo::new(Arc::clone(&device), base, capacity))
        };
        let wal_base = shards * config.shard_capacity_bytes;
        Ok(EngineBackends {
            shard_stores: (0..shards)
                .map(|i| partition(i * config.shard_capacity_bytes, config.shard_capacity_bytes))
                .collect(),
            shard_wals: if wal {
                (0..shards)
                    .map(|i| partition(wal_base + i * wal_cap, wal_cap))
                    .collect()
            } else {
                Vec::new()
            },
            engine_wal: wal.then(|| partition(wal_base + shards * wal_cap, wal_cap)),
        })
    }
}

/// One real file per shard in a directory, over the persistent-worker
/// [`FileThreadPoolIo`] backend, plus a persisted [`EngineManifest`].
///
/// Layout of the directory: `shard-NNN.store` and (with the WAL enabled)
/// `shard-NNN.wal` per shard, `engine.wal` for the epoch log, `MANIFEST`
/// (written atomically via a temp file + rename), and a `DIRTY` sentinel that
/// exists exactly while un-checkpointed mutations may have touched the files.
///
/// This is the only shipped topology whose engines survive the process:
/// [`crate::EngineBuilder::recover`] reopens the directory, restores each
/// shard's superblock snapshot from the manifest and replays the WALs. With the
/// WAL **disabled** there is nothing to replay, so a reopen can only restore
/// the state of the last clean checkpoint — and because in-place page rewrites
/// after that snapshot would be invisible, `recover()` **refuses** a WAL-less
/// directory whose `DIRTY` sentinel is still present (mutated, never
/// checkpointed again). Shut down cleanly (checkpoint, then drop) or enable
/// the WAL.
#[derive(Debug, Clone)]
pub struct RealFiles {
    dir: PathBuf,
    workers_per_file: usize,
}

impl RealFiles {
    /// Targets `dir` (created on first provision) with 2 I/O workers per file.
    pub fn new<P: AsRef<Path>>(dir: P) -> Self {
        Self {
            dir: dir.as_ref().to_path_buf(),
            workers_per_file: 2,
        }
    }

    /// Overrides the number of positional-I/O worker threads per file.
    pub fn workers_per_file(mut self, workers: usize) -> Self {
        self.workers_per_file = workers.max(1);
        self
    }

    /// The target directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("MANIFEST")
    }

    fn dirty_path(&self) -> PathBuf {
        self.dir.join("DIRTY")
    }

    fn open(&self, file: String) -> IoResult<Arc<dyn IoQueue>> {
        Ok(Arc::new(FileThreadPoolIo::open(
            self.dir.join(file),
            self.workers_per_file,
        )?))
    }
}

impl ShardProvisioner for RealFiles {
    fn name(&self) -> &'static str {
        "real-files"
    }

    fn provision(&self, config: &EngineConfig, mode: ProvisionMode) -> IoResult<EngineBackends> {
        std::fs::create_dir_all(&self.dir)?;
        if mode == ProvisionMode::Create {
            // A fresh build over a previously used directory: retire the old
            // incarnation's durable state *before* any new bytes land. The old
            // manifest goes first — a crash anywhere after this point must
            // leave a directory that recover() refuses ("no manifest"), never
            // one whose stale manifest describes partially overwritten files.
            for name in ["MANIFEST", "MANIFEST.tmp", "DIRTY"] {
                match std::fs::remove_file(self.dir.join(name)) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e.into()),
                }
            }
            if let Ok(dir) = std::fs::File::open(&self.dir) {
                let _ = dir.sync_all();
            }
            // Truncate every file this engine will use, so stale bytes — in
            // particular old WAL records beyond the new log's tail, which a
            // rescan could otherwise salvage into the new engine — are gone.
            for entry in std::fs::read_dir(&self.dir)? {
                let entry = entry?;
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.ends_with(".store") || name.ends_with(".wal") {
                    std::fs::OpenOptions::new()
                        .write(true)
                        .truncate(true)
                        .open(entry.path())?;
                }
            }
        }
        let wal = config.base.wal_enabled;
        let shard_stores = (0..config.shards)
            .map(|i| self.open(format!("shard-{i:03}.store")))
            .collect::<IoResult<_>>()?;
        let shard_wals = if wal {
            (0..config.shards)
                .map(|i| self.open(format!("shard-{i:03}.wal")))
                .collect::<IoResult<_>>()?
        } else {
            Vec::new()
        };
        let engine_wal = if wal {
            Some(self.open("engine.wal".to_string())?)
        } else {
            None
        };
        Ok(EngineBackends {
            shard_stores,
            shard_wals,
            engine_wal,
        })
    }

    fn load_manifest(&self) -> IoResult<Option<EngineManifest>> {
        let text = match std::fs::read_to_string(self.manifest_path()) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        EngineManifest::decode(&text)
            .map(Some)
            .ok_or_else(|| IoError::InvalidConfig(format!("corrupt engine manifest at {:?}", self.manifest_path())))
    }

    fn save_manifest(&self, manifest: &EngineManifest) -> IoResult<()> {
        std::fs::create_dir_all(&self.dir)?;
        // Atomic replace: the manifest is either the old snapshot or the new one,
        // never a torn mix.
        let tmp = self.dir.join("MANIFEST.tmp");
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(manifest.encode().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.manifest_path())?;
        // Make the rename itself durable (best effort — not all platforms allow
        // fsync on directories).
        if let Ok(dir) = std::fs::File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        Ok(())
    }

    fn set_dirty(&self, dirty: bool) -> IoResult<()> {
        if dirty {
            std::fs::create_dir_all(&self.dir)?;
            std::fs::File::create(self.dirty_path())?.sync_all()?;
        } else {
            match std::fs::remove_file(self.dirty_path()) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
                Err(e) => return Err(e.into()),
            }
        }
        if let Ok(dir) = std::fs::File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        Ok(())
    }

    fn load_dirty(&self) -> IoResult<bool> {
        Ok(self.dirty_path().exists())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio_btree::PioConfig;
    use ssd_sim::DeviceProfile;

    fn config(shards: usize, wal: bool) -> EngineConfig {
        EngineConfig::builder()
            .shards(shards)
            .profile(DeviceProfile::F120)
            .shard_capacity_bytes(8 << 20)
            .wal_capacity_bytes(2 << 20)
            .base(PioConfig::builder().page_size(2048).pool_pages(64).wal(wal).build())
            .build()
    }

    #[test]
    fn manifest_round_trips() {
        let manifest = EngineManifest {
            shards: 3,
            page_size: 2048,
            wal_enabled: true,
            bounds: vec![100, 2000],
            shard_meta: vec![
                ShardMeta {
                    root: 7,
                    height: 2,
                    high_water: 40,
                },
                ShardMeta {
                    root: 9,
                    height: 3,
                    high_water: 55,
                },
                ShardMeta {
                    root: 11,
                    height: 2,
                    high_water: 12,
                },
            ],
        };
        assert_eq!(EngineManifest::decode(&manifest.encode()), Some(manifest.clone()));
        // Single shard: no bounds.
        let single = EngineManifest {
            shards: 1,
            bounds: vec![],
            shard_meta: manifest.shard_meta[..1].to_vec(),
            ..manifest
        };
        assert_eq!(EngineManifest::decode(&single.encode()), Some(single));
    }

    #[test]
    fn corrupt_manifests_decode_to_none() {
        assert_eq!(EngineManifest::decode(""), None);
        assert_eq!(EngineManifest::decode("pio-engine-manifest v2\nshards=1\n"), None);
        let good = EngineManifest {
            shards: 2,
            page_size: 2048,
            wal_enabled: false,
            bounds: vec![50],
            shard_meta: vec![
                ShardMeta {
                    root: 1,
                    height: 2,
                    high_water: 3,
                },
                ShardMeta {
                    root: 4,
                    height: 2,
                    high_water: 6,
                },
            ],
        }
        .encode();
        // Dropping any line breaks a required invariant.
        for skip in 1..good.lines().count() {
            let mutilated: String = good
                .lines()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, l)| format!("{l}\n"))
                .collect();
            assert_eq!(EngineManifest::decode(&mutilated), None, "dropped line {skip}");
        }
    }

    #[test]
    fn device_per_shard_provisions_independent_backends() {
        let backends = DevicePerShard
            .provision(&config(3, true), ProvisionMode::Create)
            .unwrap();
        assert_eq!(backends.shard_stores.len(), 3);
        assert_eq!(backends.shard_wals.len(), 3);
        assert!(backends.engine_wal.is_some());
        // Independent devices: a write through one store is invisible to another.
        use pio::ParallelIo;
        backends.shard_stores[0].write_at(0, b"zero").unwrap();
        assert_eq!(backends.shard_stores[1].read_at(0, 4).unwrap(), vec![0u8; 4]);
    }

    #[test]
    fn shared_device_partitions_are_disjoint_views_of_one_device() {
        let backends = SharedDevice.provision(&config(2, true), ProvisionMode::Create).unwrap();
        use pio::ParallelIo;
        backends.shard_stores[0].write_at(0, b"s0").unwrap();
        backends.shard_stores[1].write_at(0, b"s1").unwrap();
        backends.shard_wals[0].write_at(0, b"w0").unwrap();
        assert_eq!(backends.shard_stores[0].read_at(0, 2).unwrap(), b"s0");
        assert_eq!(backends.shard_stores[1].read_at(0, 2).unwrap(), b"s1");
        assert_eq!(backends.shard_wals[0].read_at(0, 2).unwrap(), b"w0");
        // Same underlying device: the stats of partition 0's queue are partition
        // local, so its write count is exactly its own.
        assert_eq!(backends.shard_stores[0].io_stats().writes, 1);
    }

    #[test]
    fn no_wal_means_no_wal_backends() {
        for provisioner in [&DevicePerShard as &dyn ShardProvisioner, &SharedDevice] {
            let backends = provisioner.provision(&config(2, false), ProvisionMode::Create).unwrap();
            assert!(backends.shard_wals.is_empty());
            assert!(backends.engine_wal.is_none());
        }
    }
}
