//! The cross-shard flush-epoch log: engine-level batch atomicity.
//!
//! Each shard's [`pio_btree::PioBTree`] recovers independently from its own WAL
//! (Section 3.4 of the paper), which is enough for a single tree but not for the
//! engine: `insert_batch` fans one logical batch out to several shards, and a
//! crash mid-fan-out would leave the batch durable on some shards and lost on
//! others. This module adds the coordinator's side of a two-phase protocol over a
//! dedicated engine-level [`storage::Wal`]:
//!
//! 1. **`Begin { epoch, shards }`** is forced *before* any shard sees the batch;
//! 2. every member shard appends the batch inside a `BatchBegin`/`BatchEnd`
//!    bracket of its own WAL and forces it
//!    ([`pio_btree::PioBTree::insert_batch_epoch`]) — the per-shard durability
//!    ack;
//! 3. **`Ack { epoch, shard, durable_lsn }`** records are forced once every
//!    member shard is durable;
//! 4. **`Commit { epoch }`** is forced last; only then does `insert_batch`
//!    return success.
//!
//! At recovery, [`EpochLog::analyze`] classifies every epoch:
//!
//! * a **committed** epoch's records are replayed by normal per-shard recovery;
//! * an uncommitted epoch whose acks cover *all* member shards is safely durable
//!   everywhere — recovery **re-drives** it by writing the missing commit record
//!   (the crash hit the window between ack force and commit force);
//! * any other uncommitted epoch is **discarded** on every shard: the engine
//!   passes its id to each shard's
//!   [`pio_btree::PioBTree::recover_with`] filter, which drops the epoch's
//!   logical records and unwinds any flush that had already applied them.
//!
//! Either way the batch is all-or-nothing across shards.
//!
//! ## Migration epochs
//!
//! Shard rebalancing (see [`crate::rebalance`]) journals each boundary move as
//! a special epoch: **`MigrateBegin { epoch, src, dst, lo, hi }`** is forced
//! before any entry is copied, the region copy and retire are bracketed in the
//! two shards' WALs under the epoch id, and **`MigrateCommit { epoch }`** is
//! forced only after both shards are durable — the commit *is* the boundary
//! swap. Unlike batch epochs, an uncommitted migration is **never re-driven**,
//! even when fully acked: the boundary swap did not happen, so replaying the
//! copies would put keys on a shard that does not own them. Recovery discards
//! the epoch on both shards (rolling the copy and the retire back together)
//! and keeps the old boundary; a committed migration replays normally and
//! re-applies its boundary from the logged range.

use pio::IoResult;
use pio_btree::RecoveryReport;
use std::collections::HashMap;
use storage::{Lsn, Wal};

/// A record of the engine-level epoch log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochRecord {
    /// Opens an epoch: `shards` are the member shard indices the batch fans out
    /// to. Forced before any shard sees the batch.
    Begin {
        /// The epoch identifier (unique over the engine's lifetime, including
        /// across restarts).
        epoch: u64,
        /// Member shard indices.
        shards: Vec<u32>,
    },
    /// One member shard's sub-batch is durable in its WAL.
    Ack {
        /// The epoch identifier.
        epoch: u64,
        /// The acking shard.
        shard: u32,
        /// The shard WAL's durable LSN at ack time (diagnostic).
        durable_lsn: Lsn,
    },
    /// The epoch is durable on every member shard; the batch is committed.
    Commit {
        /// The epoch identifier.
        epoch: u64,
    },
    /// Opens a boundary migration: keys in `[lo, hi)` move from shard `src` to
    /// shard `dst`. Forced before any entry is copied.
    MigrateBegin {
        /// The epoch identifier.
        epoch: u64,
        /// The migration being journalled.
        migration: MigrationSpec,
    },
    /// The migration's copies and retires are durable on both shards; this
    /// record *is* the boundary swap.
    MigrateCommit {
        /// The epoch identifier.
        epoch: u64,
    },
}

/// The durable description of one boundary migration (the payload of
/// [`EpochRecord::MigrateBegin`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationSpec {
    /// The shard losing the range.
    pub src: u32,
    /// The shard gaining the range (always `src ± 1`).
    pub dst: u32,
    /// Inclusive low end of the moving range.
    pub lo: u64,
    /// Exclusive high end of the moving range.
    pub hi: u64,
}

impl EpochRecord {
    /// Serialises the record into a byte payload for the engine WAL.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            EpochRecord::Begin { epoch, shards } => {
                out.push(1);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&(shards.len() as u32).to_le_bytes());
                for s in shards {
                    out.extend_from_slice(&s.to_le_bytes());
                }
            }
            EpochRecord::Ack {
                epoch,
                shard,
                durable_lsn,
            } => {
                out.push(2);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&durable_lsn.to_le_bytes());
            }
            EpochRecord::Commit { epoch } => {
                out.push(3);
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            EpochRecord::MigrateBegin { epoch, migration } => {
                out.push(4);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&migration.src.to_le_bytes());
                out.extend_from_slice(&migration.dst.to_le_bytes());
                out.extend_from_slice(&migration.lo.to_le_bytes());
                out.extend_from_slice(&migration.hi.to_le_bytes());
            }
            EpochRecord::MigrateCommit { epoch } => {
                out.push(5);
                out.extend_from_slice(&epoch.to_le_bytes());
            }
        }
        out
    }

    /// Parses a payload produced by [`EpochRecord::encode`]. Returns `None` for
    /// corrupt or unknown payloads.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let u64_at =
            |off: usize| -> Option<u64> { buf.get(off..off + 8).map(|b| u64::from_le_bytes(b.try_into().unwrap())) };
        let u32_at =
            |off: usize| -> Option<u32> { buf.get(off..off + 4).map(|b| u32::from_le_bytes(b.try_into().unwrap())) };
        match *buf.first()? {
            1 => {
                let epoch = u64_at(1)?;
                let n = u32_at(9)? as usize;
                let mut shards = Vec::with_capacity(n);
                for i in 0..n {
                    shards.push(u32_at(13 + i * 4)?);
                }
                // Trailing garbage would mean a miscounted record.
                (buf.len() == 13 + n * 4).then_some(EpochRecord::Begin { epoch, shards })
            }
            2 => Some(EpochRecord::Ack {
                epoch: u64_at(1)?,
                shard: u32_at(9)?,
                durable_lsn: u64_at(13)?,
            }),
            3 => Some(EpochRecord::Commit { epoch: u64_at(1)? }),
            4 => {
                let migration = MigrationSpec {
                    src: u32_at(9)?,
                    dst: u32_at(13)?,
                    lo: u64_at(17)?,
                    hi: u64_at(25)?,
                };
                (buf.len() == 33).then_some(EpochRecord::MigrateBegin {
                    epoch: u64_at(1)?,
                    migration,
                })
            }
            5 => Some(EpochRecord::MigrateCommit { epoch: u64_at(1)? }),
            _ => None,
        }
    }
}

/// The reconstructed state of one epoch after a log scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochState {
    /// The epoch identifier.
    pub epoch: u64,
    /// Member shard indices from the `Begin` record.
    pub shards: Vec<u32>,
    /// Shards whose `Ack` reached the log.
    pub acked: Vec<u32>,
    /// Whether the `Commit` record reached the log.
    pub committed: bool,
    /// `Some` when the epoch is a boundary migration (opened by
    /// `MigrateBegin` rather than `Begin`).
    pub migration: Option<MigrationSpec>,
}

impl EpochState {
    /// Whether every member shard's ack is durable — the condition under which
    /// an uncommitted *batch* epoch may be re-driven (committed) at recovery.
    /// Migration epochs are never re-driven regardless of this.
    pub fn fully_acked(&self) -> bool {
        self.shards.iter().all(|s| self.acked.contains(s))
    }
}

/// Outcome of an [`EpochLog::analyze`] pass.
#[derive(Debug, Clone, Default)]
pub struct EpochAnalysis {
    /// Every epoch with a durable `Begin`, in log order.
    pub epochs: Vec<EpochState>,
    /// Largest epoch id seen (0 when none): restart continuity for the engine's
    /// epoch counter.
    pub max_epoch: u64,
    /// Whether the engine log ended in a torn record.
    pub torn_tail: bool,
    /// Intact records the scan visited — with checkpoint-anchored truncation
    /// this is proportional to activity since the last checkpoint, not to the
    /// engine's lifetime.
    pub records: usize,
}

/// The engine-level epoch log: a thin protocol layer over [`storage::Wal`].
pub struct EpochLog {
    wal: Wal,
}

impl EpochLog {
    /// Wraps an engine-dedicated WAL.
    pub fn new(wal: Wal) -> Self {
        Self { wal }
    }

    /// Forces the `Begin` record of `epoch` (phase one: nothing may reach a
    /// shard before this returns). Returns the `Begin` record's LSN so the
    /// caller can pin log truncation while the epoch is undecided.
    pub fn begin(&self, epoch: u64, shards: &[usize]) -> IoResult<Lsn> {
        let lsn = self.wal.append(
            &EpochRecord::Begin {
                epoch,
                shards: shards.iter().map(|&s| s as u32).collect(),
            }
            .encode(),
        );
        self.wal.force()?;
        Ok(lsn)
    }

    /// Forces the member shards' `Ack` records (phase two, first half).
    pub fn ack_all(&self, epoch: u64, acks: &[(usize, Lsn)]) -> IoResult<()> {
        for &(shard, durable_lsn) in acks {
            self.wal.append(
                &EpochRecord::Ack {
                    epoch,
                    shard: shard as u32,
                    durable_lsn,
                }
                .encode(),
            );
        }
        self.wal.force()
    }

    /// Forces the `Commit` record (phase two, second half): the batch is now
    /// atomically visible.
    pub fn commit(&self, epoch: u64) -> IoResult<()> {
        self.wal.append(&EpochRecord::Commit { epoch }.encode());
        self.wal.force()
    }

    /// Forces the `MigrateBegin` record: nothing may be copied between shards
    /// before this returns. Returns the record's LSN (the epoch's truncation
    /// pin, as for [`EpochLog::begin`]).
    pub fn migrate_begin(&self, epoch: u64, migration: MigrationSpec) -> IoResult<Lsn> {
        let lsn = self
            .wal
            .append(&EpochRecord::MigrateBegin { epoch, migration }.encode());
        self.wal.force()?;
        Ok(lsn)
    }

    /// Forces the `MigrateCommit` record — the durable boundary swap.
    pub fn migrate_commit(&self, epoch: u64) -> IoResult<()> {
        self.wal.append(&EpochRecord::MigrateCommit { epoch }.encode());
        self.wal.force()
    }

    /// Drops un-forced records (crash simulation).
    pub fn simulate_crash(&self) {
        self.wal.simulate_crash();
    }

    /// Next LSN the log will hand out — the append cursor. A checkpoint snapshots
    /// this *before* forcing so it can later truncate everything the checkpoint
    /// made redundant.
    pub fn cursor(&self) -> Lsn {
        self.wal.next_lsn()
    }

    /// Durable high-water mark of the underlying WAL.
    pub fn durable_lsn(&self) -> Lsn {
        self.wal.durable_lsn()
    }

    /// Drops every record below `upto` (see [`storage::Wal::truncate_to`]).
    /// Returns the logical bytes dropped. `upto` must be a record boundary the
    /// caller observed — in practice either [`EpochLog::cursor`] taken between
    /// forces, or an epoch's `Begin` LSN.
    pub fn truncate_to(&self, upto: Lsn) -> IoResult<u64> {
        self.wal.truncate_to(upto)
    }

    /// Logical bytes a recovery scan would still replay (durable minus
    /// truncated).
    pub fn replayable_bytes(&self) -> u64 {
        self.wal.replayable_bytes()
    }

    /// Total logical bytes dropped by truncation over the log's lifetime.
    pub fn truncated_bytes(&self) -> u64 {
        self.wal.truncated_bytes()
    }

    /// Rescans the device (salvaging records completed by a torn force) and
    /// classifies every epoch found in the log.
    pub fn analyze(&self) -> IoResult<EpochAnalysis> {
        let (rescan, scan) = self.wal.recover_scan()?;
        let mut analysis = EpochAnalysis {
            torn_tail: rescan.torn_tail || scan.torn_tail,
            ..EpochAnalysis::default()
        };
        let mut index: HashMap<u64, usize> = HashMap::new();
        for rec in &scan.records {
            analysis.records += 1;
            let Some(record) = EpochRecord::decode(&rec.payload) else {
                // Corrupt record: everything after it is untrustworthy.
                analysis.torn_tail = true;
                break;
            };
            match record {
                EpochRecord::Begin { epoch, shards } => {
                    index.insert(epoch, analysis.epochs.len());
                    analysis.max_epoch = analysis.max_epoch.max(epoch);
                    analysis.epochs.push(EpochState {
                        epoch,
                        shards,
                        acked: Vec::new(),
                        committed: false,
                        migration: None,
                    });
                }
                EpochRecord::MigrateBegin { epoch, migration } => {
                    index.insert(epoch, analysis.epochs.len());
                    analysis.max_epoch = analysis.max_epoch.max(epoch);
                    analysis.epochs.push(EpochState {
                        epoch,
                        shards: vec![migration.src, migration.dst],
                        acked: Vec::new(),
                        committed: false,
                        migration: Some(migration),
                    });
                }
                EpochRecord::Ack { epoch, shard, .. } => {
                    if let Some(&i) = index.get(&epoch) {
                        analysis.epochs[i].acked.push(shard);
                    }
                }
                EpochRecord::Commit { epoch } | EpochRecord::MigrateCommit { epoch } => {
                    if let Some(&i) = index.get(&epoch) {
                        analysis.epochs[i].committed = true;
                    }
                }
            }
        }
        Ok(analysis)
    }
}

impl std::fmt::Debug for EpochLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochLog").field("wal", &self.wal).finish()
    }
}

/// What [`crate::ShardedPioEngine::recover`] did, for inspection by callers and
/// tests.
#[derive(Debug, Clone, Default)]
pub struct EngineRecoveryReport {
    /// Per-shard recovery reports, in shard order.
    pub shards: Vec<RecoveryReport>,
    /// Epochs already committed in the engine log (replayed by normal per-shard
    /// recovery).
    pub committed_epochs: u64,
    /// Uncommitted epochs that were durable on every member shard and were
    /// re-driven (committed) during recovery.
    pub recovered_epochs: u64,
    /// Uncommitted epochs discarded on every member shard.
    pub discarded_epochs: u64,
    /// Committed migrations whose boundary swap was re-applied from the log.
    pub committed_migrations: u64,
    /// Uncommitted migrations rolled back (copies and retires discarded on
    /// both shards, old boundary kept).
    pub rolled_back_migrations: u64,
}

impl EngineRecoveryReport {
    /// Total logical records re-appended to shard OPQs.
    pub fn redone(&self) -> usize {
        self.shards.iter().map(|r| r.redone).sum()
    }

    /// Total logical records dropped because their epoch was discarded.
    pub fn discarded_records(&self) -> usize {
        self.shards.iter().map(|r| r.discarded).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pio::SimPsyncIo;
    use ssd_sim::DeviceProfile;
    use std::sync::Arc;

    fn log() -> EpochLog {
        let io = Arc::new(SimPsyncIo::with_profile(DeviceProfile::F120, 16 << 20));
        EpochLog::new(Wal::new(io, 0, 2048))
    }

    #[test]
    fn records_round_trip() {
        let records = vec![
            EpochRecord::Begin {
                epoch: 42,
                shards: vec![0, 2, 3],
            },
            EpochRecord::Begin {
                epoch: 1,
                shards: vec![],
            },
            EpochRecord::Ack {
                epoch: 42,
                shard: 2,
                durable_lsn: 9001,
            },
            EpochRecord::Commit { epoch: 42 },
            EpochRecord::MigrateBegin {
                epoch: 43,
                migration: MigrationSpec {
                    src: 2,
                    dst: 3,
                    lo: 1_000,
                    hi: u64::MAX,
                },
            },
            EpochRecord::MigrateCommit { epoch: 43 },
        ];
        for r in records {
            let encoded = r.encode();
            assert_eq!(EpochRecord::decode(&encoded), Some(r.clone()));
            for cut in 1..encoded.len() {
                assert_eq!(EpochRecord::decode(&encoded[..cut]), None, "truncated {r:?} at {cut}");
            }
        }
        assert_eq!(EpochRecord::decode(&[]), None);
        assert_eq!(EpochRecord::decode(&[77, 0, 0]), None);
    }

    #[test]
    fn analyze_classifies_epoch_outcomes() {
        let log = log();
        // Epoch 1: committed. Epoch 2: fully acked, no commit. Epoch 3: partial
        // acks. Epoch 4: begin only.
        log.begin(1, &[0, 1]).unwrap();
        log.ack_all(1, &[(0, 10), (1, 20)]).unwrap();
        log.commit(1).unwrap();
        log.begin(2, &[0, 1]).unwrap();
        log.ack_all(2, &[(0, 30), (1, 40)]).unwrap();
        log.begin(3, &[0, 1, 2]).unwrap();
        log.ack_all(3, &[(2, 50)]).unwrap();
        log.begin(4, &[1]).unwrap();
        log.simulate_crash();

        let analysis = log.analyze().unwrap();
        assert_eq!(analysis.epochs.len(), 4);
        assert_eq!(analysis.max_epoch, 4);
        assert!(!analysis.torn_tail);
        let by_id: HashMap<u64, &EpochState> = analysis.epochs.iter().map(|e| (e.epoch, e)).collect();
        assert!(by_id[&1].committed);
        assert!(!by_id[&2].committed);
        assert!(by_id[&2].fully_acked(), "both member acks are durable");
        assert!(!by_id[&3].fully_acked());
        assert!(!by_id[&4].fully_acked());
        assert!(by_id[&4].acked.is_empty());
    }

    #[test]
    fn analyze_classifies_migration_epochs() {
        let log = log();
        let spec = MigrationSpec {
            src: 1,
            dst: 2,
            lo: 500,
            hi: 900,
        };
        // Epoch 10: committed migration. Epoch 11: fully acked but uncommitted —
        // recovery must roll it back anyway (fully_acked is irrelevant for
        // migrations).
        log.migrate_begin(10, spec).unwrap();
        log.ack_all(10, &[(1, 5), (2, 6)]).unwrap();
        log.migrate_commit(10).unwrap();
        log.migrate_begin(11, spec).unwrap();
        log.ack_all(11, &[(1, 7), (2, 8)]).unwrap();
        log.simulate_crash();

        let analysis = log.analyze().unwrap();
        assert_eq!(analysis.epochs.len(), 2);
        assert_eq!(analysis.max_epoch, 11);
        let by_id: HashMap<u64, &EpochState> = analysis.epochs.iter().map(|e| (e.epoch, e)).collect();
        assert_eq!(by_id[&10].migration, Some(spec));
        assert!(by_id[&10].committed);
        assert_eq!(by_id[&10].shards, vec![1, 2]);
        assert_eq!(by_id[&11].migration, Some(spec));
        assert!(!by_id[&11].committed);
        assert!(by_id[&11].fully_acked());
    }

    #[test]
    fn unforced_records_die_with_the_crash() {
        let log = log();
        log.begin(7, &[0]).unwrap();
        // The ack and commit are appended but the crash hits before the force.
        log.wal.append(
            &EpochRecord::Ack {
                epoch: 7,
                shard: 0,
                durable_lsn: 1,
            }
            .encode(),
        );
        log.wal.append(&EpochRecord::Commit { epoch: 7 }.encode());
        log.simulate_crash();
        let analysis = log.analyze().unwrap();
        assert_eq!(analysis.epochs.len(), 1);
        assert!(!analysis.epochs[0].committed);
        assert!(analysis.epochs[0].acked.is_empty());
    }
}
