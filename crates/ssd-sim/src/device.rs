//! The simulated SSD device: NCQ batch service with channel- and package-level
//! parallelism.

use crate::clock::SimClock;
use crate::config::SsdConfig;
use crate::request::{IoKind, SsdRequest};
use crate::stats::DeviceStats;

/// Result of servicing one batch of requests (one or more NCQ windows).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// Wall time (simulated µs) between batch submission and completion of the last
    /// request in the batch.
    pub elapsed_us: f64,
    /// Per-request latency (simulated µs) relative to the batch submission instant,
    /// in the same order as the submitted slice.
    pub latencies_us: Vec<f64>,
    /// Total bytes transferred by the batch.
    pub bytes: u64,
}

impl BatchResult {
    /// Aggregate bandwidth of the batch in MiB/s.
    pub fn bandwidth_mib_s(&self) -> f64 {
        if self.elapsed_us <= 0.0 {
            return 0.0;
        }
        (self.bytes as f64 / (1024.0 * 1024.0)) / (self.elapsed_us / 1_000_000.0)
    }

    /// The mean per-request latency in µs.
    pub fn mean_latency_us(&self) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        self.latencies_us.iter().sum::<f64>() / self.latencies_us.len() as f64
    }

    /// The maximum per-request latency in µs.
    pub fn max_latency_us(&self) -> f64 {
        self.latencies_us.iter().cloned().fold(0.0, f64::max)
    }
}

/// Per-resource state tracked while servicing a scheduling window.
#[derive(Debug, Clone, Copy, Default)]
struct ChannelState {
    /// Time at which the channel data bus becomes free.
    bus_free_us: f64,
    /// Kind of the last operation that used the bus (for the read/write switch penalty).
    last_kind: Option<IoKind>,
}

/// A discrete-event flash SSD simulator.
///
/// The device owns a [`SimClock`]; every call to [`SsdDevice::submit_batch`] services
/// the batch starting at the current simulated time and advances the clock by the
/// batch's elapsed time. Callers that want to overlap CPU work with I/O (not needed
/// for the paper's experiments) can use [`SsdDevice::service_batch_at`] directly.
#[derive(Debug, Clone)]
pub struct SsdDevice {
    config: SsdConfig,
    clock: SimClock,
    stats: DeviceStats,
}

impl SsdDevice {
    /// Creates a device from a validated configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails [`SsdConfig::validate`].
    pub fn new(config: SsdConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid SsdConfig: {e}");
        }
        Self {
            config,
            clock: SimClock::new(),
            stats: DeviceStats::default(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Current simulated time in µs.
    pub fn now_us(&self) -> f64 {
        self.clock.now_us()
    }

    /// Cumulative service statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Resets the clock and statistics (the configuration is kept).
    pub fn reset(&mut self) {
        self.clock.reset();
        self.stats = DeviceStats::default();
    }

    /// Advances the simulated clock to `t_us` (a no-op if the clock is already at
    /// or past it). Drivers that schedule in-flight batches with
    /// [`SsdDevice::service_batch_at`] use this to move the timeline past a drained
    /// scheduling window.
    pub fn advance_clock_to(&mut self, t_us: f64) {
        self.clock.advance_to(t_us);
    }

    /// Records a batch that an external driver scheduled with
    /// [`SsdDevice::service_batch_at`] into the request/byte counters, so the
    /// device statistics stay meaningful for ticketed submission paths that never
    /// call [`SsdDevice::submit_batch`]. Busy time is not charged here — the
    /// driver owns the timeline and advances it via
    /// [`SsdDevice::advance_clock_to`].
    pub fn note_serviced(&mut self, requests: &[SsdRequest]) {
        self.stats.batches += 1;
        for r in requests {
            match r.kind {
                IoKind::Read => {
                    self.stats.reads += 1;
                    self.stats.read_bytes += r.len;
                }
                IoKind::Write => {
                    self.stats.writes += 1;
                    self.stats.write_bytes += r.len;
                }
            }
        }
        let window = requests.len().min(self.config.ncq_depth);
        if window > self.stats.max_outstanding {
            self.stats.max_outstanding = window;
        }
    }

    /// Services `requests` as one submission: the requests are treated as queued
    /// together (split into NCQ windows of `ncq_depth`), the simulated clock advances
    /// by the elapsed time, and per-request latencies are returned.
    ///
    /// An empty batch returns a zero result and does not advance the clock.
    pub fn submit_batch(&mut self, requests: &[SsdRequest]) -> BatchResult {
        let start = self.clock.now_us();
        let result = self.service_batch_at(start, requests);
        self.clock.advance(result.elapsed_us);
        self.record_stats(requests, &result);
        result
    }

    /// Services requests one at a time (each request is its own submission), which is
    /// how a conventional synchronous read/write path drives the device. Returns the
    /// summed elapsed time and the individual latencies.
    pub fn submit_serial(&mut self, requests: &[SsdRequest]) -> BatchResult {
        let mut latencies = Vec::with_capacity(requests.len());
        let mut elapsed = 0.0;
        let mut bytes = 0;
        for req in requests {
            let r = self.submit_batch(std::slice::from_ref(req));
            elapsed += r.elapsed_us;
            bytes += r.bytes;
            latencies.extend(r.latencies_us);
        }
        BatchResult {
            elapsed_us: elapsed,
            latencies_us: latencies,
            bytes,
        }
    }

    fn record_stats(&mut self, requests: &[SsdRequest], result: &BatchResult) {
        self.stats.batches += 1;
        self.stats.busy_us += result.elapsed_us;
        for r in requests {
            match r.kind {
                IoKind::Read => {
                    self.stats.reads += 1;
                    self.stats.read_bytes += r.len;
                }
                IoKind::Write => {
                    self.stats.writes += 1;
                    self.stats.write_bytes += r.len;
                }
            }
        }
        let window = requests.len().min(self.config.ncq_depth);
        if window > self.stats.max_outstanding {
            self.stats.max_outstanding = window;
        }
    }

    /// Computes the service schedule for a batch starting at simulated time
    /// `start_us`, without touching the device clock or statistics. Equivalent to
    /// feeding the batch through a fresh [`WindowScheduler`] (see there for the
    /// timing model).
    pub fn service_batch_at(&self, start_us: f64, requests: &[SsdRequest]) -> BatchResult {
        if requests.is_empty() {
            return BatchResult {
                elapsed_us: 0.0,
                latencies_us: Vec::new(),
                bytes: 0,
            };
        }
        let mut scheduler = self.window_scheduler(start_us);
        let mut latencies = Vec::with_capacity(requests.len());
        let mut bytes = 0u64;
        for req in requests {
            latencies.push(scheduler.push(req) - start_us);
            bytes += req.len;
        }
        BatchResult {
            elapsed_us: scheduler.frontier_us() - start_us,
            latencies_us: latencies,
            bytes,
        }
    }

    /// Creates an incremental scheduler over this device's geometry, starting its
    /// first NCQ window at `start_us`. Drivers that keep a long-lived in-flight
    /// window (ticketed submission) extend it request by request in O(pages) each,
    /// instead of re-running [`SsdDevice::service_batch_at`] over an
    /// ever-growing batch.
    pub fn window_scheduler(&self, start_us: f64) -> WindowScheduler {
        WindowScheduler::new(self.config.clone(), start_us)
    }
}

/// An incremental, request-by-request scheduler over one device timeline window
/// group.
///
/// The model (identical to what [`SsdDevice::service_batch_at`] computes — that
/// method is implemented on top of this scheduler):
/// * each request is decomposed into flash-page operations placed on
///   `(channel, package)` by the striping layout;
/// * a **read** occupies its package for `cell_read_us`, then the channel bus for
///   the page transfer;
/// * a **write** occupies the channel bus for the transfer, then its package for
///   `cell_program_us` (the bus is released during programming — the
///   write-interleaving effect described in Section 2.1);
/// * consecutive bus operations of different kinds on the same channel pay
///   `rw_switch_penalty_us` (read/write interference, Figure 3(c));
/// * every completed page crosses the shared host interface, which serialises
///   transfers at `host_us_per_kb` and caps aggregate bandwidth;
/// * each request pays `controller_overhead_us` once;
/// * requests beyond `ncq_depth` are serviced in subsequent windows.
///
/// Because requests are scheduled greedily in submission order, pushing more
/// requests never changes the completion time of earlier ones — which is what
/// lets ticketed backends keep a window open while completions are reaped.
#[derive(Debug, Clone)]
pub struct WindowScheduler {
    config: SsdConfig,
    channels: Vec<ChannelState>,
    packages: Vec<Vec<f64>>,
    host_free_us: f64,
    /// Start of the *current* NCQ window (advances as windows fill).
    window_start_us: f64,
    /// Completion frontier: when the latest-finishing request ends.
    window_end_us: f64,
    /// Requests scheduled into the current NCQ window so far.
    in_window: usize,
}

impl WindowScheduler {
    /// Creates a scheduler for `config`'s geometry whose first window starts at
    /// `start_us`.
    pub fn new(config: SsdConfig, start_us: f64) -> Self {
        let channels = vec![
            ChannelState {
                bus_free_us: start_us,
                last_kind: None,
            };
            config.channels
        ];
        let packages = vec![vec![0.0f64; config.packages_per_channel]; config.channels];
        Self {
            config,
            channels,
            packages,
            host_free_us: start_us,
            window_start_us: start_us,
            window_end_us: start_us,
            in_window: 0,
        }
    }

    /// The completion frontier so far: the absolute time the latest scheduled
    /// request finishes (equals the start time while nothing is scheduled).
    pub fn frontier_us(&self) -> f64 {
        self.window_end_us
    }

    /// Schedules one more request and returns its absolute completion time.
    pub fn push(&mut self, req: &SsdRequest) -> f64 {
        self.push_after(req, f64::NEG_INFINITY)
    }

    /// Schedules one more request that cannot *start* before `floor_us`, and
    /// returns its absolute completion time.
    ///
    /// The floor models submission causality for pipelined drivers: a driver
    /// that reaps a completion and only then submits its next batch cannot have
    /// had that batch queued on the device any earlier — so the batch's requests
    /// must not be scheduled before the observed completion time. A shallow
    /// pipeline therefore keeps the device queue shallow (late floors leave
    /// channels idle), while a deep pipeline pushes its floors into the past and
    /// fills the NCQ window — which is exactly the depth-vs-throughput curve of
    /// Figure 3. Like [`WindowScheduler::push`], pushing never changes the
    /// completion time of an earlier request.
    pub fn push_after(&mut self, req: &SsdRequest, floor_us: f64) -> f64 {
        let cfg = &self.config;
        if self.in_window == cfg.ncq_depth {
            // NCQ window full: the next window begins when this one has drained.
            self.window_start_us = self.window_end_us;
            self.in_window = 0;
        }
        let window_start = self.window_start_us.max(floor_us);
        let first_page = req.offset / cfg.flash_page_bytes;
        let n_pages = cfg.pages_spanned(req.offset, req.len);
        let page_kb = cfg.flash_page_bytes as f64 / 1024.0;
        let mut req_done = window_start;

        for p in 0..n_pages {
            let (ch, pk) = cfg.locate_page(first_page + p);
            let chan = &mut self.channels[ch];
            let pkg_free = self.packages[ch][pk];
            let mut switch = 0.0;
            if let Some(last) = chan.last_kind {
                if last != req.kind {
                    switch = cfg.rw_switch_penalty_us;
                }
            }
            let transfer_us = page_kb * cfg.channel_us_per_kb;
            let flash_done;
            match req.kind {
                IoKind::Read => {
                    // cell read on the package, then bus transfer out.
                    let cell_start = pkg_free.max(window_start);
                    let cell_end = cell_start + cfg.cell_read_us;
                    let bus_start = cell_end.max(chan.bus_free_us) + switch;
                    let bus_end = bus_start + transfer_us;
                    chan.bus_free_us = bus_end;
                    self.packages[ch][pk] = bus_end;
                    flash_done = bus_end;
                }
                IoKind::Write => {
                    // bus transfer in, then programming on the package
                    // (bus is free while the package programs).
                    let bus_start = chan.bus_free_us.max(pkg_free).max(window_start) + switch;
                    let bus_end = bus_start + transfer_us;
                    chan.bus_free_us = bus_end;
                    let program_end = bus_end + cfg.cell_program_us;
                    self.packages[ch][pk] = program_end;
                    flash_done = program_end;
                }
            }
            chan.last_kind = Some(req.kind);

            // Host interface transfer (serialised across the whole device).
            let host_start = flash_done.max(self.host_free_us);
            let host_end = host_start + page_kb * cfg.host_us_per_kb;
            self.host_free_us = host_end;
            if host_end > req_done {
                req_done = host_end;
            }
        }

        // The controller charges a fixed per-command processing cost on top of
        // the flash and host-interface schedule.
        req_done += cfg.controller_overhead_us;
        if req_done > self.window_end_us {
            self.window_end_us = req_done;
        }
        self.in_window += 1;
        req_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::DeviceProfile;

    fn dev() -> SsdDevice {
        SsdDevice::new(DeviceProfile::p300().build())
    }

    #[test]
    fn empty_batch_is_free() {
        let mut d = dev();
        let r = d.submit_batch(&[]);
        assert_eq!(r.elapsed_us, 0.0);
        assert_eq!(r.bytes, 0);
        assert_eq!(d.now_us(), 0.0);
    }

    #[test]
    fn single_read_latency_is_positive_and_clock_advances() {
        let mut d = dev();
        let r = d.submit_batch(&[SsdRequest::read(0, 4096)]);
        assert!(r.elapsed_us > 0.0);
        assert_eq!(r.latencies_us.len(), 1);
        assert!((d.now_us() - r.elapsed_us).abs() < 1e-9);
        assert_eq!(r.bytes, 4096);
    }

    #[test]
    fn batched_reads_are_faster_than_serial_reads() {
        let reqs: Vec<SsdRequest> = (0..16).map(|i| SsdRequest::read(i * 4096, 4096)).collect();
        let mut d1 = dev();
        let batched = d1.submit_batch(&reqs);
        let mut d2 = dev();
        let serial = d2.submit_serial(&reqs);
        assert!(
            batched.elapsed_us < serial.elapsed_us / 2.0,
            "channel-level parallelism should give a large speedup: batched={} serial={}",
            batched.elapsed_us,
            serial.elapsed_us
        );
    }

    #[test]
    fn batched_writes_are_faster_than_serial_writes() {
        let reqs: Vec<SsdRequest> = (0..16).map(|i| SsdRequest::write(i * 4096, 4096)).collect();
        let mut d1 = dev();
        let batched = d1.submit_batch(&reqs);
        let mut d2 = dev();
        let serial = d2.submit_serial(&reqs);
        assert!(batched.elapsed_us < serial.elapsed_us / 2.0);
    }

    #[test]
    fn large_request_latency_grows_sublinearly() {
        // Package-level parallelism: doubling the request size must not double the
        // latency (Figure 2 of the paper).
        let mut d = dev();
        let small = d.submit_batch(&[SsdRequest::read(0, 2048)]).elapsed_us;
        let mut d = dev();
        let large = d.submit_batch(&[SsdRequest::read(0, 16 * 1024)]).elapsed_us;
        assert!(
            large < small * 8.0,
            "16 KiB read ({large} µs) should cost much less than 8× a 2 KiB read ({small} µs)"
        );
    }

    #[test]
    fn writes_are_slower_than_reads() {
        let mut d = dev();
        let read = d.submit_batch(&[SsdRequest::read(0, 4096)]).elapsed_us;
        let mut d = dev();
        let write = d.submit_batch(&[SsdRequest::write(0, 4096)]).elapsed_us;
        assert!(write > read, "asymmetric read/write latency expected");
    }

    #[test]
    fn interleaved_mix_is_slower_than_grouped_mix() {
        // Figure 3(c): alternating read/write suffers from interference compared to
        // n reads followed by n writes.
        let n = 32u64;
        let mut interleaved = Vec::new();
        let mut grouped = Vec::new();
        for i in 0..n {
            interleaved.push(SsdRequest::read(i * 8192, 4096));
            interleaved.push(SsdRequest::write(i * 8192 + 4096, 4096));
        }
        for i in 0..n {
            grouped.push(SsdRequest::read(i * 8192, 4096));
        }
        for i in 0..n {
            grouped.push(SsdRequest::write(i * 8192 + 4096, 4096));
        }
        let mut d1 = dev();
        let ti = d1.submit_batch(&interleaved).elapsed_us;
        let mut d2 = dev();
        let tg = d2.submit_batch(&grouped).elapsed_us;
        assert!(tg < ti, "grouped mix ({tg} µs) should beat interleaved mix ({ti} µs)");
    }

    #[test]
    fn bandwidth_saturates_with_outstanding_level() {
        // Bandwidth must increase substantially from OutStd 1 to 32 and then flatten
        // rather than keep growing unboundedly (host interface cap).
        let bw = |outstd: u64| {
            let mut d = dev();
            let reqs: Vec<SsdRequest> = (0..outstd).map(|i| SsdRequest::read(i * 4096, 4096)).collect();
            // repeat to smooth out the first window
            let mut total_bytes = 0u64;
            let mut total_us = 0.0;
            for rep in 0..8 {
                let shifted: Vec<SsdRequest> = reqs
                    .iter()
                    .map(|r| SsdRequest::new(r.kind, r.offset + rep * 1_000_000, r.len))
                    .collect();
                let res = d.submit_batch(&shifted);
                total_bytes += res.bytes;
                total_us += res.elapsed_us;
            }
            (total_bytes as f64 / (1024.0 * 1024.0)) / (total_us / 1e6)
        };
        let bw1 = bw(1);
        let bw32 = bw(32);
        let bw64 = bw(64);
        assert!(bw32 > bw1 * 4.0, "OutStd 32 ({bw32}) should be >4x OutStd 1 ({bw1})");
        assert!(bw64 < bw32 * 2.0, "bandwidth should saturate: {bw64} vs {bw32}");
    }

    #[test]
    fn stats_accumulate() {
        let mut d = dev();
        d.submit_batch(&[SsdRequest::read(0, 4096), SsdRequest::write(4096, 2048)]);
        d.submit_batch(&[SsdRequest::read(8192, 2048)]);
        let s = d.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.read_bytes, 6144);
        assert_eq!(s.write_bytes, 2048);
        assert_eq!(s.batches, 2);
        assert!(s.busy_us > 0.0);
        d.reset();
        assert_eq!(d.stats().reads, 0);
        assert_eq!(d.now_us(), 0.0);
    }

    #[test]
    fn latencies_reported_for_every_request() {
        let mut d = dev();
        let reqs: Vec<SsdRequest> = (0..100).map(|i| SsdRequest::read(i * 4096, 4096)).collect();
        let r = d.submit_batch(&reqs);
        assert_eq!(r.latencies_us.len(), 100);
        assert!(r.latencies_us.iter().all(|&l| l > 0.0));
        assert!(r.max_latency_us() >= r.mean_latency_us());
    }

    #[test]
    #[should_panic(expected = "invalid SsdConfig")]
    #[allow(clippy::field_reassign_with_default)]
    fn invalid_config_panics() {
        let mut cfg = SsdConfig::default();
        cfg.channels = 0;
        let _ = SsdDevice::new(cfg);
    }
}
