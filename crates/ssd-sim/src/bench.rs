//! Micro-benchmark helpers mirroring the device characterisation of Section 2.
//!
//! These helpers run the same experiments the paper uses to motivate its design
//! principles: latency as a function of the I/O size (Figure 2), bandwidth as a
//! function of the outstanding-I/O level (Figure 3 a/b), and the interference between
//! interleaved reads and writes (Figure 3 c). They are also used by the PIO B-tree's
//! auto-tuner (Section 3.6) to extract `Pr`, `Pw`, `Pr(L)`, `P'r` and `P'w` from a
//! device before choosing the leaf-node and OPQ sizes.

use crate::device::SsdDevice;
use crate::request::{IoKind, SsdRequest};

/// A single measured point of a micro-benchmark sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter (I/O size in bytes, or outstanding-I/O level).
    pub x: u64,
    /// Mean per-request latency in µs.
    pub latency_us: f64,
    /// Aggregate bandwidth in MiB/s.
    pub bandwidth_mib_s: f64,
}

/// Deterministic pseudo-random offset generator (xorshift), used so the sweeps touch
/// scattered logical addresses without depending on the `rand` crate.
#[derive(Debug, Clone)]
pub struct OffsetGen {
    state: u64,
    span_bytes: u64,
    align: u64,
}

impl OffsetGen {
    /// Creates a generator of offsets uniformly spread in `[0, span_bytes)`, aligned
    /// to `align` bytes.
    pub fn new(seed: u64, span_bytes: u64, align: u64) -> Self {
        assert!(align > 0 && span_bytes >= align);
        Self {
            state: seed.max(1),
            span_bytes,
            align,
        }
    }

    /// Produces the next pseudo-random aligned offset.
    pub fn next_offset(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        let v = x.wrapping_mul(0x2545F4914F6CDD1D);
        let slots = self.span_bytes / self.align;
        (v % slots) * self.align
    }
}

/// Measures mean latency of random requests of each size in `sizes`, using a single
/// outstanding request at a time (the paper's Figure 2 methodology).
pub fn latency_vs_size(
    device: &mut SsdDevice,
    kind: IoKind,
    sizes: &[u64],
    requests_per_size: usize,
    span_bytes: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    let mut out = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let mut gen = OffsetGen::new(seed ^ size, span_bytes, size.max(512));
        let mut total_latency = 0.0;
        let mut total_bytes = 0u64;
        let mut total_us = 0.0;
        for _ in 0..requests_per_size {
            let req = SsdRequest::new(kind, gen.next_offset(), size);
            let r = device.submit_batch(&[req]);
            total_latency += r.latencies_us[0];
            total_bytes += r.bytes;
            total_us += r.elapsed_us;
        }
        out.push(SweepPoint {
            x: size,
            latency_us: total_latency / requests_per_size as f64,
            bandwidth_mib_s: if total_us > 0.0 {
                (total_bytes as f64 / (1024.0 * 1024.0)) / (total_us / 1e6)
            } else {
                0.0
            },
        });
    }
    out
}

/// Measures bandwidth with `io_size`-byte random requests at each outstanding-I/O
/// level in `levels` (the paper's Figure 3 a/b methodology).
pub fn bandwidth_vs_outstanding(
    device: &mut SsdDevice,
    kind: IoKind,
    io_size: u64,
    levels: &[usize],
    batches_per_level: usize,
    span_bytes: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    let mut out = Vec::with_capacity(levels.len());
    for &level in levels {
        let mut gen = OffsetGen::new(seed ^ level as u64, span_bytes, io_size.max(512));
        let mut total_bytes = 0u64;
        let mut total_us = 0.0;
        let mut total_latency = 0.0;
        let mut n_reqs = 0usize;
        for _ in 0..batches_per_level {
            let reqs: Vec<SsdRequest> = (0..level)
                .map(|_| SsdRequest::new(kind, gen.next_offset(), io_size))
                .collect();
            let r = device.submit_batch(&reqs);
            total_bytes += r.bytes;
            total_us += r.elapsed_us;
            total_latency += r.latencies_us.iter().sum::<f64>();
            n_reqs += level;
        }
        out.push(SweepPoint {
            x: level as u64,
            latency_us: if n_reqs > 0 { total_latency / n_reqs as f64 } else { 0.0 },
            bandwidth_mib_s: if total_us > 0.0 {
                (total_bytes as f64 / (1024.0 * 1024.0)) / (total_us / 1e6)
            } else {
                0.0
            },
        });
    }
    out
}

/// Measures mixed read/write bandwidth at each outstanding level, either highly
/// interleaved (read, write, read, write, …) or grouped (n reads then n writes) —
/// the paper's Figure 3(c) methodology.
pub fn mixed_bandwidth_vs_outstanding(
    device: &mut SsdDevice,
    io_size: u64,
    levels: &[usize],
    batches_per_level: usize,
    interleaved: bool,
    span_bytes: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    let mut out = Vec::with_capacity(levels.len());
    for &level in levels {
        let mut gen = OffsetGen::new(seed ^ (level as u64) << 1, span_bytes, io_size.max(512));
        let mut total_bytes = 0u64;
        let mut total_us = 0.0;
        for _ in 0..batches_per_level {
            let mut reqs = Vec::with_capacity(level);
            if interleaved {
                for i in 0..level {
                    let kind = if i % 2 == 0 { IoKind::Read } else { IoKind::Write };
                    reqs.push(SsdRequest::new(kind, gen.next_offset(), io_size));
                }
            } else {
                let half = level / 2;
                for _ in 0..half.max(1) {
                    reqs.push(SsdRequest::new(IoKind::Read, gen.next_offset(), io_size));
                }
                for _ in half.max(1)..level {
                    reqs.push(SsdRequest::new(IoKind::Write, gen.next_offset(), io_size));
                }
            }
            let r = device.submit_batch(&reqs);
            total_bytes += r.bytes;
            total_us += r.elapsed_us;
        }
        out.push(SweepPoint {
            x: level as u64,
            latency_us: 0.0,
            bandwidth_mib_s: if total_us > 0.0 {
                (total_bytes as f64 / (1024.0 * 1024.0)) / (total_us / 1e6)
            } else {
                0.0
            },
        });
    }
    out
}

/// Device characterisation needed by the PIO B-tree auto-tuner (Section 3.6):
/// single-page read/write latency, leaf-node read latency for a given size, and the
/// amortised per-page latencies under psync I/O.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceCharacterisation {
    /// `Pr` — random read latency of one page (µs).
    pub page_read_us: f64,
    /// `Pw` — random write latency of one page (µs).
    pub page_write_us: f64,
    /// `P'r` — amortised read latency per page when `outstd` pages are read by one
    /// psync call (µs).
    pub psync_read_us: f64,
    /// `P'w` — amortised write latency per page when `outstd` pages are written by one
    /// psync call (µs).
    pub psync_write_us: f64,
    /// Outstanding level used to measure the amortised latencies.
    pub outstd: usize,
    /// Page size used for the characterisation (bytes).
    pub page_bytes: u64,
}

/// Runs the micro-benchmark of Section 3.6 against a device and returns its
/// characterisation. `page_bytes` is the B+-tree page / Leaf Segment size.
pub fn characterise(device: &mut SsdDevice, page_bytes: u64, outstd: usize, seed: u64) -> DeviceCharacterisation {
    let span = 4 * 1024 * 1024 * 1024u64; // 4 GiB file, as in the paper's benchmarks
    let reps = 64;
    let single_read = latency_vs_size(device, IoKind::Read, &[page_bytes], reps, span, seed);
    let single_write = latency_vs_size(device, IoKind::Write, &[page_bytes], reps, span, seed ^ 0xABCD);
    let batch_read = bandwidth_vs_outstanding(device, IoKind::Read, page_bytes, &[outstd], 16, span, seed ^ 0x1111);
    let batch_write = bandwidth_vs_outstanding(device, IoKind::Write, page_bytes, &[outstd], 16, span, seed ^ 0x2222);

    // Amortised per-page latency = elapsed / requests; recover it from bandwidth.
    let amortised = |point: &SweepPoint| -> f64 {
        if point.bandwidth_mib_s <= 0.0 {
            return 0.0;
        }
        let pages_per_sec = point.bandwidth_mib_s * 1024.0 * 1024.0 / page_bytes as f64;
        1e6 / pages_per_sec
    };

    DeviceCharacterisation {
        page_read_us: single_read[0].latency_us,
        page_write_us: single_write[0].latency_us,
        psync_read_us: amortised(&batch_read[0]),
        psync_write_us: amortised(&batch_write[0]),
        outstd,
        page_bytes,
    }
}

/// Measures the latency of reading a contiguous region of `n_pages` pages of
/// `page_bytes` each with a single request — `Pr(L)` in the paper's cost model.
pub fn leaf_read_latency(device: &mut SsdDevice, page_bytes: u64, n_pages: u64, seed: u64) -> f64 {
    let span = 4 * 1024 * 1024 * 1024u64;
    let size = page_bytes * n_pages;
    let pts = latency_vs_size(device, IoKind::Read, &[size], 32, span, seed);
    pts[0].latency_us
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::DeviceProfile;

    fn dev() -> SsdDevice {
        SsdDevice::new(DeviceProfile::f120().build())
    }

    #[test]
    fn offset_gen_is_aligned_and_bounded() {
        let mut g = OffsetGen::new(7, 1 << 20, 4096);
        for _ in 0..1000 {
            let o = g.next_offset();
            assert_eq!(o % 4096, 0);
            assert!(o < 1 << 20);
        }
    }

    #[test]
    fn offset_gen_is_deterministic() {
        let mut a = OffsetGen::new(42, 1 << 30, 2048);
        let mut b = OffsetGen::new(42, 1 << 30, 2048);
        for _ in 0..100 {
            assert_eq!(a.next_offset(), b.next_offset());
        }
    }

    #[test]
    fn latency_grows_but_sublinearly_with_size() {
        let mut d = dev();
        let sizes = [2048, 4096, 8192, 16384, 32768];
        let pts = latency_vs_size(&mut d, IoKind::Read, &sizes, 16, 1 << 30, 99);
        assert_eq!(pts.len(), sizes.len());
        let l2k = pts[0].latency_us;
        let l32k = pts[4].latency_us;
        assert!(l32k > l2k, "larger I/O must not be cheaper in absolute terms");
        assert!(
            l32k < l2k * 16.0,
            "latency must grow sub-linearly: 32 KiB={l32k}, 2 KiB={l2k}"
        );
    }

    #[test]
    fn bandwidth_improves_with_outstanding_level() {
        let mut d = dev();
        let pts = bandwidth_vs_outstanding(&mut d, IoKind::Read, 4096, &[1, 4, 16, 64], 8, 1 << 30, 5);
        assert!(pts[3].bandwidth_mib_s > pts[0].bandwidth_mib_s * 3.0);
    }

    #[test]
    fn interleaved_mix_is_slower() {
        let mut d1 = dev();
        let inter = mixed_bandwidth_vs_outstanding(&mut d1, 4096, &[64], 8, true, 1 << 30, 11);
        let mut d2 = dev();
        let grouped = mixed_bandwidth_vs_outstanding(&mut d2, 4096, &[64], 8, false, 1 << 30, 11);
        assert!(grouped[0].bandwidth_mib_s > inter[0].bandwidth_mib_s);
    }

    #[test]
    fn characterisation_is_sensible() {
        let mut d = dev();
        let c = characterise(&mut d, 4096, 32, 3);
        assert!(c.page_read_us > 0.0);
        assert!(c.page_write_us > c.page_read_us, "writes slower than reads");
        assert!(c.psync_read_us < c.page_read_us, "psync amortised read must be cheaper");
        assert!(
            c.psync_write_us < c.page_write_us,
            "psync amortised write must be cheaper"
        );
    }

    #[test]
    fn leaf_read_latency_increases_with_pages() {
        let mut d = dev();
        let l1 = leaf_read_latency(&mut d, 4096, 1, 17);
        let l4 = leaf_read_latency(&mut d, 4096, 4, 17);
        assert!(l4 >= l1);
        assert!(l4 < l1 * 4.0);
    }
}
