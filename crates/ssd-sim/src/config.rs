//! Device configuration: geometry and latency parameters of a simulated flash SSD.

/// Full parameter set of a simulated flash SSD.
///
/// The defaults correspond to a mid-range SATA-II MLC device; the presets in
/// [`crate::profiles`] override them to model the six devices used in the paper.
///
/// Geometry: the logical address space is striped across `channels` channels at flash
/// page granularity, and within a channel across `packages_per_channel` packages, so
/// flash page `p` lives on channel `p % channels`, package
/// `(p / channels) % packages_per_channel` — the layout the paper describes as
/// RAID-like striping of the gang (Section 2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct SsdConfig {
    /// Human-readable device name (used by the benchmark tables).
    pub name: String,
    /// Number of independent channels (`m` in the paper).
    pub channels: usize,
    /// Number of flash packages ganged on each channel (`n` in the paper).
    pub packages_per_channel: usize,
    /// Size of a flash page in bytes — the smallest physical I/O unit (typically 2 KiB
    /// or 4 KiB).
    pub flash_page_bytes: u64,
    /// Time to read a flash page from the cells into the package register (µs).
    pub cell_read_us: f64,
    /// Time to program (write) a flash page from the register into the cells (µs).
    pub cell_program_us: f64,
    /// Per-kilobyte transfer time on a channel data bus (µs/KiB).
    pub channel_us_per_kb: f64,
    /// Per-kilobyte transfer time on the host interface (SATA/PCI-E) shared by all
    /// channels (µs/KiB). This caps the aggregate bandwidth, producing the
    /// saturation visible in Figure 3 of the paper.
    pub host_us_per_kb: f64,
    /// Fixed controller / host-interface overhead charged per request (µs).
    pub controller_overhead_us: f64,
    /// Penalty applied on a channel when consecutive operations switch between read
    /// and write (µs). Models the read/write interference of Figure 3(c).
    pub rw_switch_penalty_us: f64,
    /// Native command queue depth: the number of requests serviced per scheduling
    /// window. Larger batches are processed in successive windows.
    pub ncq_depth: usize,
}

impl Default for SsdConfig {
    fn default() -> Self {
        Self {
            name: "generic-ssd".to_string(),
            channels: 8,
            packages_per_channel: 4,
            flash_page_bytes: 2048,
            cell_read_us: 60.0,
            cell_program_us: 400.0,
            channel_us_per_kb: 0.25,
            host_us_per_kb: 3.5,
            controller_overhead_us: 25.0,
            rw_switch_penalty_us: 40.0,
            ncq_depth: 32,
        }
    }
}

impl SsdConfig {
    /// Total number of flash packages in the device (`channels × packages_per_channel`).
    pub fn total_packages(&self) -> usize {
        self.channels * self.packages_per_channel
    }

    /// Number of flash pages touched by a request of `len` bytes starting at `offset`.
    pub fn pages_spanned(&self, offset: u64, len: u64) -> u64 {
        let first = offset / self.flash_page_bytes;
        let last = (offset + len - 1) / self.flash_page_bytes;
        last - first + 1
    }

    /// Recommends an engine shard count for this device, given the per-shard
    /// outstanding-I/O level (`PioMax`): enough shards that their combined
    /// outstanding I/O covers the device's internal parallelism
    /// (`channels × packages_per_channel` concurrently serviceable flash pages —
    /// Section 2.1 of the paper), and no more. One shard with `PioMax ≥` the
    /// package count already saturates the gangs, so extra shards then only add
    /// host-side stream parallelism; conversely a small `PioMax` needs
    /// `⌈packages / PioMax⌉` independent psync streams to keep every package
    /// busy. This is the *geometric* half of shard-count tuning — it considers
    /// only the device, not the workload; feed the result into the cost
    /// model's `recommended_shards` (the `pio-btree` crate) as the stream
    /// capacity to get the workload-aware recommendation on top.
    pub fn recommended_shard_count(&self, pio_max: usize) -> usize {
        self.total_packages().div_ceil(pio_max.max(1)).max(1)
    }

    /// Maps a flash page index to `(channel, package)` according to the striping
    /// layout described in the struct documentation.
    pub fn locate_page(&self, flash_page: u64) -> (usize, usize) {
        let channel = (flash_page % self.channels as u64) as usize;
        let package = ((flash_page / self.channels as u64) % self.packages_per_channel as u64) as usize;
        (channel, package)
    }

    /// Validates the configuration, returning a description of the first problem
    /// found, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 {
            return Err("channels must be > 0".into());
        }
        if self.packages_per_channel == 0 {
            return Err("packages_per_channel must be > 0".into());
        }
        if self.flash_page_bytes == 0 || !self.flash_page_bytes.is_power_of_two() {
            return Err("flash_page_bytes must be a non-zero power of two".into());
        }
        if self.ncq_depth == 0 {
            return Err("ncq_depth must be > 0".into());
        }
        for (name, v) in [
            ("cell_read_us", self.cell_read_us),
            ("cell_program_us", self.cell_program_us),
            ("channel_us_per_kb", self.channel_us_per_kb),
            ("host_us_per_kb", self.host_us_per_kb),
            ("controller_overhead_us", self.controller_overhead_us),
            ("rw_switch_penalty_us", self.rw_switch_penalty_us),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and non-negative"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SsdConfig::default().validate().is_ok());
    }

    #[test]
    fn pages_spanned_counts_boundaries() {
        let cfg = SsdConfig::default(); // 2 KiB flash pages
        assert_eq!(cfg.pages_spanned(0, 2048), 1);
        assert_eq!(cfg.pages_spanned(0, 2049), 2);
        assert_eq!(cfg.pages_spanned(1, 2048), 2);
        assert_eq!(cfg.pages_spanned(4096, 8192), 4);
        assert_eq!(cfg.pages_spanned(100, 1), 1);
    }

    #[test]
    fn locate_page_round_robins_channels_then_packages() {
        let cfg = SsdConfig {
            channels: 4,
            packages_per_channel: 2,
            ..SsdConfig::default()
        };
        assert_eq!(cfg.locate_page(0), (0, 0));
        assert_eq!(cfg.locate_page(1), (1, 0));
        assert_eq!(cfg.locate_page(3), (3, 0));
        assert_eq!(cfg.locate_page(4), (0, 1));
        assert_eq!(cfg.locate_page(7), (3, 1));
        // wraps around the whole device
        assert_eq!(cfg.locate_page(8), (0, 0));
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn invalid_configs_are_rejected() {
        let mut cfg = SsdConfig::default();
        cfg.channels = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SsdConfig::default();
        cfg.flash_page_bytes = 3000;
        assert!(cfg.validate().is_err());

        let mut cfg = SsdConfig::default();
        cfg.cell_read_us = -1.0;
        assert!(cfg.validate().is_err());

        let mut cfg = SsdConfig::default();
        cfg.ncq_depth = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn recommended_shards_cover_the_package_count() {
        let cfg = SsdConfig {
            channels: 8,
            packages_per_channel: 4, // 32 packages
            ..SsdConfig::default()
        };
        assert_eq!(cfg.recommended_shard_count(8), 4);
        assert_eq!(
            cfg.recommended_shard_count(32),
            1,
            "PioMax already saturates the device"
        );
        assert_eq!(cfg.recommended_shard_count(64), 1);
        assert_eq!(cfg.recommended_shard_count(5), 7, "ceil(32 / 5)");
        assert_eq!(cfg.recommended_shard_count(0), 32, "degenerate PioMax is clamped to 1");
    }

    #[test]
    fn total_packages_is_product() {
        let cfg = SsdConfig {
            channels: 5,
            packages_per_channel: 3,
            ..SsdConfig::default()
        };
        assert_eq!(cfg.total_packages(), 15);
    }
}
