//! Cumulative service statistics of a simulated device.

/// Counters accumulated by [`crate::SsdDevice`] across its lifetime (or since the
/// last [`crate::SsdDevice::reset`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceStats {
    /// Number of read requests serviced.
    pub reads: u64,
    /// Number of write requests serviced.
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Number of batch submissions.
    pub batches: u64,
    /// Total simulated time the device spent servicing batches (µs).
    pub busy_us: f64,
    /// Largest scheduling-window occupancy observed (capped at the NCQ depth).
    pub max_outstanding: usize,
}

impl DeviceStats {
    /// Total number of requests serviced.
    pub fn total_requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total bytes transferred in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Average number of requests per batch submission (0 if no batches yet).
    pub fn avg_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.total_requests() as f64 / self.batches as f64
        }
    }

    /// Aggregate bandwidth over the busy time, in MiB/s (0 if idle).
    pub fn bandwidth_mib_s(&self) -> f64 {
        if self.busy_us <= 0.0 {
            0.0
        } else {
            (self.total_bytes() as f64 / (1024.0 * 1024.0)) / (self.busy_us / 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = DeviceStats {
            reads: 6,
            writes: 2,
            read_bytes: 6 * 4096,
            write_bytes: 2 * 4096,
            batches: 4,
            busy_us: 1_000_000.0,
            max_outstanding: 4,
        };
        assert_eq!(s.total_requests(), 8);
        assert_eq!(s.total_bytes(), 8 * 4096);
        assert!((s.avg_batch_size() - 2.0).abs() < 1e-12);
        let expected_bw = (8.0 * 4096.0) / (1024.0 * 1024.0);
        assert!((s.bandwidth_mib_s() - expected_bw).abs() < 1e-9);
    }

    #[test]
    fn zero_division_guards() {
        let s = DeviceStats::default();
        assert_eq!(s.avg_batch_size(), 0.0);
        assert_eq!(s.bandwidth_mib_s(), 0.0);
    }
}
