//! # ssd-sim — a discrete-event flash SSD simulator
//!
//! The PIO B-tree paper (Roh et al., VLDB 2011) derives its design from two
//! properties of flash SSDs:
//!
//! * **Channel-level parallelism** — an SSD contains `m` channels, each wired to a
//!   gang of `n` flash packages. Requests queued together (NCQ/TCQ window) that land
//!   on different channels are serviced concurrently, so the bandwidth grows with the
//!   *outstanding I/O level* (the paper measures more than a ten-fold improvement).
//! * **Package-level parallelism** — logical pages are striped over the packages of a
//!   gang, so a single large request is spread over several packages and its latency
//!   grows *sub-linearly* with the request size.
//!
//! The paper evaluates on six real devices (Iodrive, P300, F120, Vertex2, Intel
//! X25-E/M). This crate replaces that hardware with a parameterised discrete-event
//! simulator: it models flash cell read / program time, per-channel data buses, a
//! shared host interface, NCQ-style batch service windows, and the read/write
//! interference penalty reported by Chen et al. and reproduced in Figure 3(c) of the
//! paper. Per-device parameter presets are provided in [`profiles`].
//!
//! The simulator is *timing only*: it answers "how long would this batch of I/Os
//! take?" in simulated microseconds. Byte storage is layered on top of it by the
//! `pio` crate. All experiments in the reproduction report simulated time, which
//! makes every figure deterministic and lets device profiles express the hardware
//! differences that the paper's figures rely on.
//!
//! ## Quick example
//!
//! ```
//! use ssd_sim::{DeviceProfile, SsdDevice, SsdRequest, IoKind};
//!
//! let mut dev = SsdDevice::new(DeviceProfile::p300().build());
//! // Submit 8 outstanding 4 KiB reads at once (one NCQ window).
//! let reqs: Vec<SsdRequest> = (0..8)
//!     .map(|i| SsdRequest::new(IoKind::Read, i * 4096, 4096))
//!     .collect();
//! let res = dev.submit_batch(&reqs);
//! // Eight queued reads take far less than eight sequential reads.
//! let seq: f64 = (0..8)
//!     .map(|i| dev.submit_batch(&[SsdRequest::new(IoKind::Read, i * 4096, 4096)]).elapsed_us)
//!     .sum();
//! assert!(res.elapsed_us < seq);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod clock;
pub mod config;
pub mod device;
pub mod profiles;
pub mod request;
pub mod stats;

pub use clock::SimClock;
pub use config::SsdConfig;
pub use device::{BatchResult, SsdDevice, WindowScheduler};
pub use profiles::DeviceProfile;
pub use request::{IoKind, SsdRequest};
pub use stats::DeviceStats;
