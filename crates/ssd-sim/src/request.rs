//! I/O request descriptors accepted by the simulated device.

/// The direction of a simulated I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Read `len` bytes starting at the logical byte address.
    Read,
    /// Write (program) `len` bytes starting at the logical byte address.
    Write,
}

impl IoKind {
    /// Returns `true` for [`IoKind::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, IoKind::Read)
    }

    /// Returns `true` for [`IoKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, IoKind::Write)
    }
}

/// A single request submitted to the simulated SSD.
///
/// Addresses are logical byte addresses (LBA × sector size already applied); the
/// device maps them onto flash pages, channels and packages internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsdRequest {
    /// Read or write.
    pub kind: IoKind,
    /// Logical byte address of the first byte accessed.
    pub offset: u64,
    /// Number of bytes accessed. Must be non-zero.
    pub len: u64,
}

impl SsdRequest {
    /// Creates a new request. Panics if `len` is zero.
    pub fn new(kind: IoKind, offset: u64, len: u64) -> Self {
        assert!(len > 0, "SsdRequest length must be non-zero");
        Self { kind, offset, len }
    }

    /// Convenience constructor for a read request.
    pub fn read(offset: u64, len: u64) -> Self {
        Self::new(IoKind::Read, offset, len)
    }

    /// Convenience constructor for a write request.
    pub fn write(offset: u64, len: u64) -> Self {
        Self::new(IoKind::Write, offset, len)
    }

    /// The exclusive end address of the request.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(IoKind::Read.is_read());
        assert!(!IoKind::Read.is_write());
        assert!(IoKind::Write.is_write());
        assert!(!IoKind::Write.is_read());
    }

    #[test]
    fn request_constructors() {
        let r = SsdRequest::read(4096, 2048);
        assert_eq!(r.kind, IoKind::Read);
        assert_eq!(r.offset, 4096);
        assert_eq!(r.len, 2048);
        assert_eq!(r.end(), 6144);
        let w = SsdRequest::write(0, 512);
        assert_eq!(w.kind, IoKind::Write);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_length_rejected() {
        let _ = SsdRequest::read(0, 0);
    }
}
