//! Parameter presets modelling the six flash SSDs benchmarked in the paper.
//!
//! The paper (Section 2.1, Figure 2/3) evaluates six devices chosen to cover the
//! host-interface types, controllers and flash generations of 2011: Fusion-io
//! Iodrive (PCI-E, SLC), Micron RealSSD P300 (SATA-III, SLC 35 nm), Corsair F120
//! (SATA-II, SandForce, MLC), OCZ Vertex2 (SATA-II, SandForce, MLC), Intel X25-E
//! (SATA-II, SLC 50 nm) and Intel X25-M (SATA-II, MLC 35 nm).
//!
//! The absolute numbers below are *not* measurements of those devices; they are
//! plausible parameters chosen so that the simulated curves have the same shape and
//! relative ordering as the paper's Figures 2–4: Iodrive ≫ P300 > X25-E ≳ F120 ≳
//! Vertex2 > X25-M, read latency ≪ write latency, ~10× bandwidth gain from
//! outstanding I/O, saturation near the host-interface limit, and a visible
//! read/write interference penalty.

use crate::config::SsdConfig;

/// Named device presets used throughout the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceProfile {
    /// Fusion-io Iodrive — PCI-E enterprise device, the fastest in the paper.
    Iodrive,
    /// Micron RealSSD P300 — SATA-III enterprise SLC device.
    P300,
    /// Corsair Force F120 — SATA-II consumer MLC device (SandForce controller).
    F120,
    /// OCZ Vertex2 — SATA-II consumer MLC device (SandForce controller).
    Vertex2,
    /// Intel X25-E — SATA-II SLC device.
    IntelX25E,
    /// Intel X25-M — SATA-II mainstream MLC device.
    IntelX25M,
}

impl DeviceProfile {
    /// All six profiles, in the order the paper lists them in its figures.
    pub fn all() -> [DeviceProfile; 6] {
        [
            DeviceProfile::Iodrive,
            DeviceProfile::F120,
            DeviceProfile::Vertex2,
            DeviceProfile::IntelX25E,
            DeviceProfile::IntelX25M,
            DeviceProfile::P300,
        ]
    }

    /// The three devices used for the index experiments (Sections 4.1–4.2).
    pub fn experiment_trio() -> [DeviceProfile; 3] {
        [DeviceProfile::Iodrive, DeviceProfile::P300, DeviceProfile::F120]
    }

    /// Short lowercase name used in benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceProfile::Iodrive => "iodrive",
            DeviceProfile::P300 => "p300",
            DeviceProfile::F120 => "f120",
            DeviceProfile::Vertex2 => "vertex2",
            DeviceProfile::IntelX25E => "intel-x25e",
            DeviceProfile::IntelX25M => "intel-x25m",
        }
    }

    /// Shorthand constructor: `DeviceProfile::iodrive()` etc.
    pub fn iodrive() -> Self {
        DeviceProfile::Iodrive
    }
    /// Shorthand constructor for the P300 profile.
    pub fn p300() -> Self {
        DeviceProfile::P300
    }
    /// Shorthand constructor for the F120 profile.
    pub fn f120() -> Self {
        DeviceProfile::F120
    }
    /// Shorthand constructor for the Vertex2 profile.
    pub fn vertex2() -> Self {
        DeviceProfile::Vertex2
    }
    /// Shorthand constructor for the Intel X25-E profile.
    pub fn intel_x25e() -> Self {
        DeviceProfile::IntelX25E
    }
    /// Shorthand constructor for the Intel X25-M profile.
    pub fn intel_x25m() -> Self {
        DeviceProfile::IntelX25M
    }

    /// Builds the [`SsdConfig`] for this profile.
    pub fn build(&self) -> SsdConfig {
        match self {
            DeviceProfile::Iodrive => SsdConfig {
                name: "iodrive".into(),
                channels: 24,
                packages_per_channel: 4,
                flash_page_bytes: 2048,
                cell_read_us: 42.0,
                cell_program_us: 180.0,
                channel_us_per_kb: 0.08,
                host_us_per_kb: 1.35, // ~720 MiB/s PCI-E path
                controller_overhead_us: 34.0,
                rw_switch_penalty_us: 28.0,
                ncq_depth: 64,
            },
            DeviceProfile::P300 => SsdConfig {
                name: "p300".into(),
                channels: 16,
                packages_per_channel: 4,
                flash_page_bytes: 2048,
                cell_read_us: 48.0,
                cell_program_us: 230.0,
                channel_us_per_kb: 0.12,
                host_us_per_kb: 3.0, // ~330 MiB/s SATA-III path (conservative)
                controller_overhead_us: 62.0,
                rw_switch_penalty_us: 38.0,
                ncq_depth: 32,
            },
            DeviceProfile::F120 => SsdConfig {
                name: "f120".into(),
                channels: 8,
                packages_per_channel: 8,
                flash_page_bytes: 2048,
                cell_read_us: 62.0,
                cell_program_us: 340.0,
                channel_us_per_kb: 0.16,
                host_us_per_kb: 3.6, // ~270 MiB/s SATA-II path
                controller_overhead_us: 72.0,
                rw_switch_penalty_us: 46.0,
                ncq_depth: 32,
            },
            DeviceProfile::Vertex2 => SsdConfig {
                name: "vertex2".into(),
                channels: 8,
                packages_per_channel: 4,
                flash_page_bytes: 2048,
                cell_read_us: 66.0,
                cell_program_us: 380.0,
                channel_us_per_kb: 0.18,
                host_us_per_kb: 3.6,
                controller_overhead_us: 78.0,
                rw_switch_penalty_us: 48.0,
                ncq_depth: 32,
            },
            DeviceProfile::IntelX25E => SsdConfig {
                name: "intel-x25e".into(),
                channels: 10,
                packages_per_channel: 4,
                flash_page_bytes: 2048,
                cell_read_us: 52.0,
                cell_program_us: 240.0,
                channel_us_per_kb: 0.15,
                host_us_per_kb: 3.6,
                controller_overhead_us: 66.0,
                rw_switch_penalty_us: 40.0,
                ncq_depth: 32,
            },
            DeviceProfile::IntelX25M => SsdConfig {
                name: "intel-x25m".into(),
                channels: 10,
                packages_per_channel: 4,
                flash_page_bytes: 2048,
                cell_read_us: 70.0,
                cell_program_us: 620.0,
                channel_us_per_kb: 0.18,
                host_us_per_kb: 3.8,
                controller_overhead_us: 84.0,
                rw_switch_penalty_us: 52.0,
                ncq_depth: 32,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SsdDevice;
    use crate::request::SsdRequest;

    #[test]
    fn all_profiles_build_valid_configs() {
        for p in DeviceProfile::all() {
            let cfg = p.build();
            assert!(cfg.validate().is_ok(), "{} must validate", p.name());
            assert_eq!(cfg.name, p.name());
        }
    }

    #[test]
    fn experiment_trio_is_subset_of_all() {
        let all = DeviceProfile::all();
        for p in DeviceProfile::experiment_trio() {
            assert!(all.contains(&p));
        }
    }

    #[test]
    fn iodrive_is_fastest_for_random_reads() {
        let latency = |p: DeviceProfile| {
            let mut d = SsdDevice::new(p.build());
            d.submit_batch(&[SsdRequest::read(0, 4096)]).elapsed_us
        };
        let io = latency(DeviceProfile::Iodrive);
        for p in [
            DeviceProfile::P300,
            DeviceProfile::F120,
            DeviceProfile::Vertex2,
            DeviceProfile::IntelX25E,
            DeviceProfile::IntelX25M,
        ] {
            assert!(
                io < latency(p),
                "iodrive must have the lowest single-read latency (vs {})",
                p.name()
            );
        }
    }

    #[test]
    fn mlc_writes_slower_than_slc_writes() {
        let wlat = |p: DeviceProfile| {
            let mut d = SsdDevice::new(p.build());
            d.submit_batch(&[SsdRequest::write(0, 4096)]).elapsed_us
        };
        assert!(wlat(DeviceProfile::IntelX25M) > wlat(DeviceProfile::IntelX25E));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = DeviceProfile::all().iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
