//! Simulated clock used by the device and its clients.
//!
//! The simulator measures everything in **simulated microseconds** (`f64`). The
//! clock only ever moves forward; batches submitted to the device advance it by the
//! elapsed service time of the batch.

/// A monotonically increasing simulated clock (microseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimClock {
    now_us: f64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated time in microseconds.
    pub fn now_us(&self) -> f64 {
        self.now_us
    }

    /// Advances the clock by `delta_us` microseconds. Negative deltas are ignored so
    /// that the clock remains monotone even if a caller computes a tiny negative
    /// rounding artefact.
    pub fn advance(&mut self, delta_us: f64) {
        if delta_us > 0.0 {
            self.now_us += delta_us;
        }
    }

    /// Moves the clock to `t_us` if `t_us` is in the future; otherwise leaves it
    /// unchanged. Returns the (possibly unchanged) current time.
    pub fn advance_to(&mut self, t_us: f64) -> f64 {
        if t_us > self.now_us {
            self.now_us = t_us;
        }
        self.now_us
    }

    /// Resets the clock to zero.
    pub fn reset(&mut self) {
        self.now_us = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = SimClock::new();
        assert_eq!(c.now_us(), 0.0);
    }

    #[test]
    fn advance_is_monotone() {
        let mut c = SimClock::new();
        c.advance(10.0);
        assert_eq!(c.now_us(), 10.0);
        c.advance(-5.0);
        assert_eq!(c.now_us(), 10.0, "negative delta must be ignored");
        c.advance(2.5);
        assert!((c.now_us() - 12.5).abs() < f64::EPSILON);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let mut c = SimClock::new();
        c.advance_to(100.0);
        assert_eq!(c.now_us(), 100.0);
        c.advance_to(50.0);
        assert_eq!(c.now_us(), 100.0);
        c.advance_to(150.0);
        assert_eq!(c.now_us(), 150.0);
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut c = SimClock::new();
        c.advance(42.0);
        c.reset();
        assert_eq!(c.now_us(), 0.0);
    }
}
