//! Engine-as-a-service walkthrough: 16 concurrent closed-loop clients hammer
//! one `EngineService` over a shared simulated device. The admission
//! controller coalesces the independent requests into per-shard batches behind
//! a latency budget — gets become cross-client MPSearches, puts ride the
//! flush-epoch group commit — and every response carries its own timing, so at
//! the end we can print real latency percentiles next to the batching
//! accounting and the engine's ground-truth occupancy counters.
//!
//! Run with `cargo run --release --example service_demo`.

use engine::{EngineBuilder, EngineConfig, SharedDevice};
use pio_btree::PioConfig;
use service::EngineService;
use ssd_sim::DeviceProfile;
use std::sync::Arc;
use std::time::Duration;
use workload::{run_closed_loop, ClientMix, ClosedLoopSpec, KeyDistribution};

fn main() {
    // One SSD, four shards as address partitions of it, and the two service
    // knobs: a builder flushes at 64 requests or after 300µs, whichever first.
    let config = EngineConfig::builder()
        .shards(4)
        .profile(DeviceProfile::P300)
        .shard_capacity_bytes(4 << 30)
        .max_batch_size(64)
        .max_batch_delay_us(300)
        .base(
            PioConfig::builder()
                .page_size(2048)
                .leaf_segments(2)
                .opq_pages(8)
                .pio_max(32)
                .speriod(256)
                .bcnt(512)
                .pool_pages(1024)
                .build(),
        )
        // Pin the inner levels in memory and give leaf regions a
        // scan-resistant cache: warm descents then skip the store entirely
        // and the Zipfian working set survives the clients' scans.
        .inner_tier_bytes(2048 * 256)
        .leaf_cache_bytes(2048 * 1024)
        .build();

    let entries: Vec<(u64, u64)> = (0..200_000u64).map(|k| (k * 19, k)).collect();
    let key_space = 200_000 * 19;
    let engine = Arc::new(
        EngineBuilder::new(config)
            .topology(SharedDevice)
            .entries(&entries)
            .build()
            .expect("bulk load"),
    );
    println!(
        "loaded {} entries into {} shards on one shared device",
        entries.len(),
        engine.shard_count()
    );

    let service = EngineService::start(Arc::clone(&engine));

    // 16 closed-loop clients: each submits one request, blocks for the
    // response, and immediately submits the next — a read-heavy serving mix
    // with Zipfian-skewed keys, the shape a front end actually sees.
    let spec = ClosedLoopSpec {
        clients: 16,
        ops_per_client: 2_000,
        think_time: Duration::ZERO,
        key_space,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: ClientMix::read_heavy(),
        seed: 0xD05,
    };
    let report = run_closed_loop(&service.handle(), &spec).expect("closed loop");
    println!(
        "\n{} clients × {} ops: {} gets ({} hits), {} puts, {} scans ({} entries) in {:.2?} wall",
        spec.clients,
        spec.ops_per_client,
        report.gets,
        report.get_hits,
        report.puts,
        report.scans,
        report.scanned_entries,
        report.wall
    );

    let stats = service.shutdown();
    println!("\n--- per-request latency (wall clock) ---");
    println!("end-to-end:    {}", stats.e2e);
    println!("queue wait:    {}", stats.queue_wait);
    println!("batch service: {}", stats.batch_service);

    println!("\n--- batching ---");
    println!(
        "{} batches carried {} requests: {:.2} requests per engine call",
        stats.batches_formed,
        stats.batched_requests,
        stats.avg_batch_occupancy()
    );
    println!(
        "flush triggers: {} size-triggered, {} budget-expired, {} drained at shutdown",
        stats.size_triggered_flushes, stats.budget_expired_flushes, stats.drain_flushes
    );

    // The engine keeps its own per-shard occupancy counters — the ground truth
    // the service's accounting must agree with (bulk load adds no batches, so
    // the lifetime counters match the service's exactly).
    let engine_stats = engine.stats();
    println!("\n--- engine ground truth ---");
    println!(
        "engine saw {} sub-batches carrying {} requests: occupancy {:.2} (service reported {:.2})",
        engine_stats.batched_calls,
        engine_stats.batched_ops,
        engine_stats.avg_batch_occupancy(),
        stats.avg_batch_occupancy()
    );
    println!(
        "schedule makespan {:.0}ms of {:.0}ms device work (overlap {:.2}x), pool hit ratio {:.1}%",
        engine_stats.scheduled_io_us / 1e3,
        engine_stats.total_io_us / 1e3,
        engine_stats.overlap_factor(),
        engine_stats.pool_hit_ratio * 100.0
    );
    println!(
        "inner tier hit rate {:.1}% ({} rebuilds, {} optimistic retries), \
         leaf cache hit rate {:.1}% ({} scan bypasses)",
        engine_stats.inner_tier_hit_rate() * 100.0,
        engine_stats.rollup.inner_tier_rebuilds,
        engine_stats.rollup.inner_tier_retries,
        engine_stats.leaf_cache_hit_rate() * 100.0,
        engine_stats.leaf_cache.scan_bypasses
    );

    // The rebalancer's input, visible per shard: how the Zipfian mass actually
    // landed (routed ops since the last snapshot) and how hard each OPQ was
    // pushed (peak fill). A skew-shifted run would show one shard dominating —
    // the signal `rebalance_once` acts on.
    println!("\n--- per-shard load (routed ops / OPQ peak since last snapshot) ---");
    for shard in &engine_stats.shards {
        println!(
            "shard {} [{:>12}, {:>20}): {:>6} routed, OPQ peak {:>3}%",
            shard.shard, shard.key_lo, shard.key_hi, shard.routed_ops, shard.queue_peak_pct
        );
    }
    println!(
        "routing version {} ({} splits, {} merges, {} keys migrated)",
        engine_stats.routing_version, engine_stats.splits, engine_stats.merges, engine_stats.migrated_keys
    );
}
