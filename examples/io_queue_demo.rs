//! Submission/completion I/O in action: two shards' batches overlapped on ONE
//! shared simulated device, driven by a single thread.
//!
//! The sharded engine gives every shard its own simulated device (the paper's
//! Figure 4(b) separate-files layout). This demo shows the other deployment the
//! `IoQueue` redesign enables: both shards submit to the *same* device, their
//! batches share one scheduling window with a common start time (Figure 4(a)'s
//! shared host interface), and one driver thread reaps completions as they land —
//! no blocking calls, no thread per shard.
//!
//! ```sh
//! cargo run --release --example io_queue_demo
//! ```

use pio::{IoQueue, ParallelIo, ReadRequest, SimPsyncIo, TryComplete, WriteRequest};
use ssd_sim::DeviceProfile;

const BATCH: usize = 16;
const PAGE: usize = 4096;
/// Byte offset where shard B's pages live on the shared device.
const SHARD_B_BASE: u64 = 512 * 1024 * 1024;

fn shard_reads(base: u64) -> Vec<ReadRequest> {
    (0..BATCH as u64)
        .map(|i| ReadRequest::new(base + i * PAGE as u64, PAGE))
        .collect()
}

fn main() {
    // One shared device; both shards' data lives on it.
    let device = SimPsyncIo::with_profile(DeviceProfile::P300, 1 << 30);
    for (shard, base) in [(b'A', 0u64), (b'B', SHARD_B_BASE)] {
        let writes: Vec<(u64, Vec<u8>)> = (0..BATCH as u64)
            .map(|i| (base + i * PAGE as u64, vec![shard; PAGE]))
            .collect();
        let reqs: Vec<WriteRequest> = writes.iter().map(|(o, d)| WriteRequest::new(*o, d)).collect();
        device.psync_write(&reqs).expect("load shard data");
    }
    let loaded_us = device.device_time_us();

    // --- The event-driven part: submit both shards' batches, then reap. --------
    let ticket_a = device.submit_read(&shard_reads(0)).expect("submit shard A");
    let ticket_b = device.submit_read(&shard_reads(SHARD_B_BASE)).expect("submit shard B");
    println!(
        "submitted: shard A ticket #{}, shard B ticket #{} (both in flight)",
        ticket_a.id(),
        ticket_b.id()
    );

    // Poll both tickets from this one thread; the simulator reports them ready in
    // landing order, exactly like reaping an io_uring / io_getevents queue.
    let mut outstanding = vec![(b'A', ticket_a), (b'B', ticket_b)];
    let mut latencies = Vec::new();
    while !outstanding.is_empty() {
        let mut still_pending = Vec::new();
        for (shard, ticket) in outstanding {
            match device.try_complete(ticket).expect("poll") {
                TryComplete::Ready(done) => {
                    assert!(done.buffers.iter().all(|b| b.iter().all(|&byte| byte == shard)));
                    println!(
                        "  reaped shard {}: {} pages, latency {:.1} µs (from the shared window start)",
                        shard as char,
                        done.buffers.len(),
                        done.stats.elapsed_us
                    );
                    latencies.push(done.stats.elapsed_us);
                }
                TryComplete::Pending(t) => still_pending.push((shard, t)),
            }
        }
        outstanding = still_pending;
    }
    let overlapped_us = device.device_time_us() - loaded_us;

    // --- The same work, submitted strictly one batch after the other. ----------
    let serial_device = SimPsyncIo::with_profile(DeviceProfile::P300, 1 << 30);
    let mut serial_us = 0.0;
    for base in [0, SHARD_B_BASE] {
        let (_, stats) = serial_device.psync_read(&shard_reads(base)).expect("serial read");
        serial_us += stats.elapsed_us;
    }

    // --- And what a lone shard pays when it has the device to itself. ----------
    let lone_device = SimPsyncIo::with_profile(DeviceProfile::P300, 1 << 30);
    let (_, lone) = lone_device.psync_read(&shard_reads(0)).expect("lone read");

    println!("\nshared-device accounting ({} pages per shard):", BATCH);
    println!("  one shard alone            {:>8.1} µs", lone.elapsed_us);
    println!("  both shards, serial        {:>8.1} µs", serial_us);
    println!(
        "  both shards, overlapped    {:>8.1} µs  (group makespan)",
        overlapped_us
    );
    println!(
        "  overlap win                {:>8.2}x  vs serial submission",
        serial_us / overlapped_us
    );
    println!(
        "  contention cost            {:>8.2}x  vs having the device alone",
        overlapped_us / lone.elapsed_us
    );
    assert!(
        overlapped_us < serial_us,
        "the shared window must beat serial submission"
    );
    assert!(
        overlapped_us > lone.elapsed_us,
        "two shards on one device must contend (shared channels + host interface)"
    );
    println!("\nio_queue_demo done.");
}
