//! Tuning advisor: the Section 3.6 procedure as a standalone tool. It
//! micro-benchmarks a device profile, evaluates the cost model (eqs. 3, 9, 10) and
//! prints the recommended B+-tree node size and PIO B-tree `(leaf size, OPQ size)`
//! for several workload mixes and memory budgets — plus, from the device's
//! geometry (channels × packages vs the per-shard outstanding-I/O level), the
//! recommended **shard count** for the sharded engine.
//!
//! Run with: `cargo run --example tuning_advisor`

use engine::EngineConfig;
use pio_btree::cost::{auto_tune, optimal_btree_node_size, recommended_shards, CostModel, WorkloadMix};
use pio_btree::PioConfig;
use ssd_sim::bench::{characterise, leaf_read_latency};
use ssd_sim::{DeviceProfile, SsdDevice};

fn main() {
    let entries = 100_000_000u64; // the index size you plan to build
    let page_size = 2048usize;
    let memory_budget_pages = 8_192u64; // 16 MiB of 2 KiB pages, as in the paper

    println!(
        "PIO B-tree tuning advisor ({} entries, {} MiB memory budget)",
        entries,
        memory_budget_pages * 2 / 1024
    );
    for profile in DeviceProfile::all() {
        let config = profile.build();
        let mut device = SsdDevice::new(config.clone());
        let chars = characterise(&mut device, page_size as u64, 64, 42);
        let node = optimal_btree_node_size(&mut device, &[2048, 4096, 8192, 16384, 32768], 42);
        println!("\ndevice: {}", profile.name());
        println!(
            "  measured: Pr={:.0}us Pw={:.0}us P'r={:.0}us P'w={:.0}us",
            chars.page_read_us, chars.page_write_us, chars.psync_read_us, chars.psync_write_us
        );
        println!("  B+-tree optimal node size (eq. 3): {} bytes", node);
        // Engine shard count from the device geometry: enough independent psync
        // streams that shards × PioMax covers channels × packages (the device's
        // internal parallelism), and no more — extra shards past that point only
        // add host-side stream parallelism. Next to it, the pipeline depth each
        // shard's Auto policy resolves to on this device: ceil(NCQ / PioMax)
        // in-flight batches, so one shard's ticket pipeline fills the queue.
        let shard_recs: Vec<String> = [8usize, 32, 64]
            .iter()
            .map(|&pio_max| {
                let tree_cfg = PioConfig {
                    pio_max,
                    ..PioConfig::default()
                };
                format!(
                    "PioMax {pio_max} → {} shard(s), pipeline depth {}",
                    config.recommended_shard_count(pio_max),
                    tree_cfg.resolve_pipeline_depth(Some(config.ncq_depth)),
                )
            })
            .collect();
        println!(
            "  engine shards for {} channels × {} packages (NCQ {}): {}",
            config.channels,
            config.packages_per_channel,
            config.ncq_depth,
            shard_recs.join(", ")
        );
        // Resolved in-memory budgets next to the shard count: carve the memory
        // budget 1/4 inner tier, 3/4 leaf cache (inner levels are small — the
        // tier pins them whole long before the cache warms) and show the
        // per-shard page budgets `EngineConfig::shard_config` resolves, the
        // same arithmetic the engine applies at build time.
        let shards = config.recommended_shard_count(64).max(1);
        let inner_tier_bytes = (memory_budget_pages / 4) * page_size as u64;
        let leaf_cache_bytes = (memory_budget_pages - memory_budget_pages / 4) * page_size as u64;
        let mem_cfg = EngineConfig::builder()
            .shards(shards)
            .base(PioConfig::builder().page_size(page_size).build())
            .inner_tier_bytes(inner_tier_bytes)
            .leaf_cache_bytes(leaf_cache_bytes)
            .build();
        let per_shard = mem_cfg.shard_config();
        println!(
            "  memory budget at {shards} shard(s): inner tier {} KiB ({} pages/shard), \
             leaf cache {} KiB ({} pages/shard)",
            inner_tier_bytes / 1024,
            per_shard.inner_tier_pages,
            leaf_cache_bytes / 1024,
            per_shard.leaf_cache_pages,
        );
        // The resolved resilience policy: what every shard queue (store, WAL,
        // epoch log) will actually do on a transient device error with this
        // configuration.
        match mem_cfg.retry_policy() {
            Some(policy) => println!(
                "  retry policy: up to {} retries, backoff {} µs doubling, {} µs deadline/ticket \
                 (accounted into simulated latency); request deadline {}, admission queue {}",
                policy.retry_limit,
                policy.backoff_base_us,
                policy.deadline_us,
                mem_cfg
                    .request_deadline_ms
                    .map_or("unbounded".into(), |ms| format!("{ms} ms")),
                mem_cfg
                    .admission_queue_limit
                    .map_or("unbounded".into(), |n| format!("≤ {n} requests")),
            ),
            None => println!("  retry policy: disabled (retry_limit = 0) — transient errors surface to callers"),
        }
        for (label, mix) in [
            ("search-heavy (10% inserts)", WorkloadMix::with_insert_ratio(0.1)),
            ("balanced     (50% inserts)", WorkloadMix::with_insert_ratio(0.5)),
            ("insert-heavy (90% inserts)", WorkloadMix::with_insert_ratio(0.9)),
        ] {
            let tuning = auto_tune(
                &mut device,
                page_size,
                entries,
                memory_budget_pages,
                mix,
                &[1, 2, 4, 8],
                &[1, 16, 64, 256, 1024],
                64,
                42,
            );
            // The workload-aware half of the shard recommendation: evaluate
            // eq. (9) per shard of an s-way engine (entries and pool split,
            // OPQ multiplied) against the geometric stream capacity above.
            let leaf_read_us = leaf_read_latency(
                &mut device,
                page_size as u64,
                tuning.leaf_pages as u64,
                42 ^ tuning.leaf_pages as u64,
            );
            let model = CostModel {
                entries: entries as f64,
                fanout: ((page_size / 16) as f64 * 0.7).max(2.0),
                page_read_us: chars.page_read_us,
                page_write_us: chars.page_write_us,
                psync_read_us: chars.psync_read_us,
                psync_write_us: chars.psync_write_us,
                leaf_read_us,
                leaf_pages: tuning.leaf_pages as f64,
                pool_pages: memory_budget_pages as f64,
                opq_pages: tuning.opq_pages as f64,
                opq_entries_per_page: (page_size / pio_btree::entry::ENTRY_BYTES) as f64,
                bcnt: 5000.0,
            };
            let streams = config.recommended_shard_count(64);
            let shard_tuning = recommended_shards(&model, mix, streams, 16);
            println!(
                "  {label}: leaf = {} pages ({} KiB), OPQ = {} pages, predicted {:.0} us/op; \
                 workload-aware shards = {} ({:.0} us effective/op at {} device stream(s))",
                tuning.leaf_pages,
                tuning.leaf_pages * page_size / 1024,
                tuning.opq_pages,
                tuning.predicted_cost_us,
                shard_tuning.shards,
                shard_tuning.predicted_cost_us,
                streams,
            );
        }
    }
}
