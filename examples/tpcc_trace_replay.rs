//! OLTP-style scenario: replay a TPC-C-shaped index trace (the Section 4.2 workload)
//! against one PIO B-tree per index relation and report the per-operation-type cost,
//! as in Figure 13(a).
//!
//! Run with: `cargo run --example tpcc_trace_replay`

use pio_btree::{PioBTree, PioConfig};
use ssd_sim::DeviceProfile;
use std::sync::Arc;
use storage::{CachedStore, PageStore, WritePolicy};
use workload::{TpccConfig, TpccTraceGenerator, TraceOp};

fn main() {
    let device = DeviceProfile::F120;
    let generator = TpccTraceGenerator::new(2026, TpccConfig::default());
    let initial = generator.initial_keys(400_000);
    let trace = TpccTraceGenerator::new(2026, TpccConfig::default()).generate(200_000);

    // One index per relation, as PostgreSQL keeps one B-tree per index relation.
    let config = PioConfig::builder()
        .page_size(4096)
        .leaf_segments(1)
        .opq_pages(20)
        .pool_pages(128)
        .pio_max(64)
        .build();
    let mut trees: Vec<PioBTree> = initial
        .iter()
        .map(|keys| {
            let entries: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k)).collect();
            let io = Arc::new(pio::SimPsyncIo::with_profile(device, 8 << 30));
            let store = Arc::new(CachedStore::new(
                PageStore::new(io, 4096),
                128,
                WritePolicy::WriteThrough,
            ));
            PioBTree::bulk_load(store, &entries, config.clone()).expect("bulk load")
        })
        .collect();

    let mut time_by_type = [0.0f64; 4]; // search, insert, range, delete
    let mut count_by_type = [0u64; 4];
    for op in &trace {
        let tree = &mut trees[op.relation()];
        let before = tree.io_elapsed_us();
        match *op {
            TraceOp::Search { key, .. } => {
                tree.search(key).expect("search");
                time_by_type[0] += tree.io_elapsed_us() - before;
                count_by_type[0] += 1;
            }
            TraceOp::Insert { key, value, .. } => {
                tree.insert(key, value).expect("insert");
                time_by_type[1] += tree.io_elapsed_us() - before;
                count_by_type[1] += 1;
            }
            TraceOp::RangeSearch { lo, hi, .. } => {
                tree.range_search(lo, hi).expect("range");
                time_by_type[2] += tree.io_elapsed_us() - before;
                count_by_type[2] += 1;
            }
            TraceOp::Delete { key, .. } => {
                tree.delete(key).expect("delete");
                time_by_type[3] += tree.io_elapsed_us() - before;
                count_by_type[3] += 1;
            }
        }
    }
    for tree in &mut trees {
        let before = tree.io_elapsed_us();
        tree.checkpoint().expect("final flush");
        time_by_type[1] += tree.io_elapsed_us() - before;
    }

    println!(
        "TPC-C index trace replay on {} ({} operations, 8 relations)",
        device.name(),
        trace.len()
    );
    println!(
        "{:>14} {:>10} {:>14} {:>16}",
        "op type", "count", "total (ms)", "mean (us/op)"
    );
    for (i, name) in ["point search", "insert", "range search", "delete"].iter().enumerate() {
        let mean = if count_by_type[i] > 0 {
            time_by_type[i] / count_by_type[i] as f64
        } else {
            0.0
        };
        println!(
            "{:>14} {:>10} {:>14.1} {:>16.1}",
            name,
            count_by_type[i],
            time_by_type[i] / 1e3,
            mean
        );
    }
    let total: f64 = time_by_type.iter().sum();
    println!("{:>14} {:>10} {:>14.1}", "total", trace.len(), total / 1e3);
}
