//! Analytics-style scenario: bulk-load a large index, then compare the conventional
//! leaf-chain range scan of a B+-tree against the PIO B-tree's parallel range search
//! (prange) on the same simulated device — the workload that motivates Section 3.1.2.
//!
//! Run with: `cargo run --example bulk_index_and_range_scan`

use btree::bulk_load;
use pio::SimPsyncIo;
use pio_btree::{PioBTree, PioConfig};
use ssd_sim::DeviceProfile;
use std::sync::Arc;
use storage::{CachedStore, PageStore, WritePolicy};

fn main() {
    let device = DeviceProfile::Iodrive;
    let entries: Vec<(u64, u64)> = (0..2_000_000u64).map(|k| (k * 4, k)).collect();

    // Baseline B+-tree with 4 KiB nodes and a 1 MiB write-back buffer pool.
    let io = Arc::new(SimPsyncIo::with_profile(device, 16 << 30));
    let bt_store = Arc::new(CachedStore::new(PageStore::new(io, 4096), 256, WritePolicy::WriteBack));
    let mut btree = bulk_load(bt_store, &entries, 0.7).expect("bulk load B+-tree");

    // PIO B-tree with 2 KiB pages and 8 KiB leaves.
    let config = PioConfig::builder()
        .page_size(2048)
        .leaf_segments(4)
        .opq_pages(4)
        .pool_pages(512)
        .pio_max(64)
        .build();
    let pio_store = Arc::new(CachedStore::new(
        PageStore::new(Arc::new(SimPsyncIo::with_profile(device, 16 << 30)), 2048),
        512,
        WritePolicy::WriteThrough,
    ));
    let mut pio = PioBTree::bulk_load(pio_store, &entries, config).expect("bulk load PIO B-tree");

    println!("Range scans over a 2M-entry index on {}", device.name());
    println!(
        "{:>12} {:>14} {:>14} {:>9}",
        "range", "B+tree (ms)", "PIO (ms)", "speedup"
    );
    for span in [1_000u64, 10_000, 100_000, 1_000_000] {
        let lo = 3_000_000u64;
        let hi = lo + span * 4;

        let start = btree.store().io_elapsed_us();
        let a = btree.range_search(lo, hi).expect("btree range");
        let btree_ms = (btree.store().io_elapsed_us() - start) / 1e3;

        let start = pio.io_elapsed_us();
        let b = pio.range_search(lo, hi).expect("pio range");
        let pio_ms = (pio.io_elapsed_us() - start) / 1e3;

        assert_eq!(a.len(), b.len(), "both trees must return the same result");
        println!(
            "{:>12} {:>14.2} {:>14.2} {:>8.1}x",
            span,
            btree_ms,
            pio_ms,
            btree_ms / pio_ms
        );
    }
    println!("\nprange search fetches every leaf of the range with psync I/O instead of");
    println!("walking the leaf chain one synchronous read at a time.");
}
