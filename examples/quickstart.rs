//! Quickstart: create a PIO B-tree over a simulated flash SSD, insert, search,
//! range-scan and inspect the I/O statistics that make it fast.
//!
//! Run with: `cargo run --example quickstart`

use pio_btree::{PioBTree, PioConfig};
use ssd_sim::DeviceProfile;

fn main() {
    // 1. Pick a device. The library ships profiles for the six SSDs the paper
    //    benchmarks; P300 is the SATA-III enterprise drive.
    let device = DeviceProfile::P300;

    // 2. Configure the tree: 4 KiB pages, 8 KiB asymmetric leaf nodes (2 segments),
    //    a 16-page operation queue and psync batches of up to 64 outstanding I/Os.
    let config = PioConfig::builder()
        .page_size(4096)
        .leaf_segments(2)
        .opq_pages(16)
        .pio_max(64)
        .pool_pages(512)
        .build();

    let mut tree = PioBTree::create(device, 4 << 30, config).expect("create tree");

    // 3. Insert a million key/value pairs. Inserts are buffered in the operation
    //    queue and flushed in psync batches (bupdate), so the amortised cost per
    //    insert is a fraction of a conventional B+-tree's read-modify-write.
    for key in 0..1_000_000u64 {
        tree.insert(key, key * 10).expect("insert");
    }
    tree.checkpoint().expect("flush the operation queue");

    // 4. Point lookups and a parallel range search (prange).
    assert_eq!(tree.search(123_456).expect("search"), Some(1_234_560));
    assert_eq!(tree.search(2_000_000).expect("search"), None);
    let range = tree.range_search(500_000, 500_100).expect("range search");
    assert_eq!(range.len(), 100);

    // 5. MPSearch: a batch of point lookups resolved level-by-level with psync I/O.
    // Stay inside the inserted key range [0, 1M): 255 * 3_900 = 994_500.
    let keys: Vec<u64> = (0..256u64).map(|i| i * 3_900).collect();
    let results = tree.multi_search(&keys).expect("multi search");
    assert!(results.iter().all(|r| r.is_some()));
    assert!(keys.iter().zip(&results).all(|(k, r)| *r == Some(k * 10)));

    // 6. What did that cost? The simulator accounts every page in simulated time.
    let stats = tree.stats();
    let io = tree.store().store().stats();
    println!("PIO B-tree quickstart on {}", device.name());
    println!("  height                : {}", tree.height());
    println!("  inserts               : {}", stats.inserts);
    println!("  bupdate batches       : {}", stats.bupdates);
    println!(
        "  leaf appends/rewrites : {}/{}",
        stats.leaf_appends, stats.leaf_rewrites
    );
    println!("  leaf splits           : {}", stats.leaf_splits);
    println!("  pages read/written    : {}/{}", io.page_reads, io.page_writes);
    println!("  psync calls           : {}", io.read_batches + io.write_batches);
    println!("  simulated I/O time    : {:.1} ms", tree.io_elapsed_us() / 1e3);
    println!(
        "  buffer pool hit ratio : {:.1}%",
        tree.store().pool_stats().hit_ratio() * 100.0
    );
}
