//! Sharded PIO engine walkthrough: bulk load a key-range-partitioned engine, fan
//! requests out across the shards, let the background maintenance worker drain the
//! operation queues, and read the aggregated statistics.
//!
//! Run with `cargo run --example sharded_engine_demo`.

use engine::{EngineConfig, ShardedPioEngine};
use pio_btree::PioConfig;
use ssd_sim::DeviceProfile;
use workload::{replay, KeyDistribution, MixSpec, OperationGenerator};

fn main() {
    // Four shards over a simulated Micron P300; the pool budget is an engine-wide
    // total divided across the shards, while each shard owns a full-size OPQ.
    let config = EngineConfig::builder()
        .shards(4)
        .profile(DeviceProfile::P300)
        .shard_capacity_bytes(4 << 30)
        .base(
            PioConfig::builder()
                .page_size(4096)
                .leaf_segments(2)
                .opq_pages(8)
                .pio_max(64)
                .pool_pages(2048)
                .build(),
        )
        .flush_threshold(0.5)
        .maintenance_interval_ms(5)
        .build();

    // Bulk load 400k entries; the entry keys double as the boundary sample, so the
    // quantile cuts give every shard ~100k entries.
    let entries: Vec<(u64, u64)> = (0..400_000u64).map(|k| (k * 5, k)).collect();
    let engine = ShardedPioEngine::bulk_load(config, &entries).expect("bulk load");
    println!("loaded {} entries into {} shards", entries.len(), engine.shard_count());
    println!("shard boundaries: {:?}", engine.boundaries());

    // A cross-shard MPSearch: the router splits the batch by owning shard and the
    // shards run their MPSearches concurrently.
    let keys: Vec<u64> = (0..256u64).map(|i| i * 7_919 % 2_000_000).collect();
    let hits = engine.multi_search(&keys).expect("multi_search");
    println!(
        "multi_search over {} keys across shards: {} hits",
        keys.len(),
        hits.iter().filter(|h| h.is_some()).count()
    );

    // A range scan straddling every shard boundary, stitched back in key order.
    let range = engine.range_search(0, 100_000).expect("range_search");
    println!(
        "range_search [0, 100k): {} entries (first {:?}, last {:?})",
        range.len(),
        range.first(),
        range.last()
    );

    // Drive a mixed workload through the generic workload driver; the background
    // maintenance worker drains shard OPQs off the foreground path meanwhile.
    let mix = MixSpec {
        insert: 0.4,
        delete: 0.05,
        update: 0.05,
        range_search: 0.02,
        range_span: 200,
    };
    let mut generator = OperationGenerator::new(42, 2_000_000, KeyDistribution::Uniform, mix);
    let ops = generator.generate(50_000);
    let mut target = engine;
    let replay_stats = replay(&mut target, &ops, 64).expect("replay");
    println!(
        "replayed {} ops ({} inserts, {} searches in {} MPSearch rounds, hit ratio {:.2})",
        replay_stats.total_ops(),
        replay_stats.inserts,
        replay_stats.searches,
        replay_stats.search_batches,
        replay_stats.search_hits as f64 / replay_stats.searches.max(1) as f64,
    );
    let engine = target;
    engine.checkpoint().expect("checkpoint");

    // Aggregated statistics: per-shard + rollup, device work vs schedule makespan.
    let stats = engine.stats();
    println!("\nper-shard state after the workload:");
    for shard in &stats.shards {
        println!(
            "  shard {}: keys [{}, {}), height {}, {} inserts, {} bupdates, pool hit ratio {:.2}, {:.0} µs of I/O",
            shard.shard,
            shard.key_lo,
            shard.key_hi,
            shard.height,
            shard.pio.inserts,
            shard.pio.bupdates,
            shard.pool.hit_ratio(),
            shard.io_elapsed_us,
        );
    }
    println!(
        "\nengine totals: {} ops, device work {:.0} µs, schedule makespan {:.0} µs → {:.2}x cross-shard I/O overlap",
        stats.rollup.searches + stats.rollup.multi_searches + stats.rollup.update_ops(),
        stats.total_io_us,
        stats.scheduled_io_us,
        stats.overlap_factor(),
    );
    println!(
        "maintenance passes that flushed at least one shard: {}",
        stats.maintenance_flushes
    );
}
