//! Sharded PIO engine walkthrough: bulk load a key-range-partitioned engine, fan
//! requests out across the shards, let the background maintenance worker drain the
//! operation queues, read the aggregated statistics — and finally crash the
//! engine mid-batch and watch cross-shard recovery resolve the interrupted epoch.
//!
//! Run with `cargo run --example sharded_engine_demo`.

use engine::{EngineBackends, EngineBuilder, EngineConfig, ShardedPioEngine};
use pio::{CrashPlan, FaultClock, FaultIo, IoQueue, SimPsyncIo};
use pio_btree::PioConfig;
use ssd_sim::DeviceProfile;
use std::sync::Arc;
use workload::{replay, KeyDistribution, MixSpec, OperationGenerator};

fn main() {
    // Four shards over a simulated Micron P300; the pool budget is an engine-wide
    // total divided across the shards, while each shard owns a full-size OPQ.
    let config = EngineConfig::builder()
        .shards(4)
        .profile(DeviceProfile::P300)
        .shard_capacity_bytes(4 << 30)
        .base(
            PioConfig::builder()
                .page_size(4096)
                .leaf_segments(2)
                .opq_pages(8)
                .pio_max(64)
                .pool_pages(2048)
                .build(),
        )
        .flush_threshold(0.5)
        .maintenance_interval_ms(5)
        .build();

    // Bulk load 400k entries; the entry keys double as the boundary sample, so the
    // quantile cuts give every shard ~100k entries.
    let entries: Vec<(u64, u64)> = (0..400_000u64).map(|k| (k * 5, k)).collect();
    let engine = ShardedPioEngine::bulk_load(config, &entries).expect("bulk load");
    println!("loaded {} entries into {} shards", entries.len(), engine.shard_count());
    println!("shard boundaries: {:?}", engine.boundaries());

    // A cross-shard MPSearch: the router splits the batch by owning shard and the
    // shards run their MPSearches concurrently.
    let keys: Vec<u64> = (0..256u64).map(|i| i * 7_919 % 2_000_000).collect();
    let hits = engine.multi_search(&keys).expect("multi_search");
    println!(
        "multi_search over {} keys across shards: {} hits",
        keys.len(),
        hits.iter().filter(|h| h.is_some()).count()
    );

    // A range scan straddling every shard boundary, stitched back in key order.
    let range = engine.range_search(0, 100_000).expect("range_search");
    println!(
        "range_search [0, 100k): {} entries (first {:?}, last {:?})",
        range.len(),
        range.first(),
        range.last()
    );

    // Drive a mixed workload through the generic workload driver; the background
    // maintenance worker drains shard OPQs off the foreground path meanwhile.
    let mix = MixSpec {
        insert: 0.4,
        delete: 0.05,
        update: 0.05,
        range_search: 0.02,
        range_span: 200,
    };
    let mut generator = OperationGenerator::new(42, 2_000_000, KeyDistribution::Uniform, mix);
    let ops = generator.generate(50_000);
    let mut target = engine;
    let replay_stats = replay(&mut target, &ops, 64).expect("replay");
    println!(
        "replayed {} ops ({} inserts, {} searches in {} MPSearch rounds, hit ratio {:.2})",
        replay_stats.total_ops(),
        replay_stats.inserts,
        replay_stats.searches,
        replay_stats.search_batches,
        replay_stats.search_hits as f64 / replay_stats.searches.max(1) as f64,
    );
    let engine = target;
    engine.checkpoint().expect("checkpoint");

    // Aggregated statistics: per-shard + rollup, device work vs schedule makespan.
    let stats = engine.stats();
    println!("\nper-shard state after the workload:");
    for shard in &stats.shards {
        println!(
            "  shard {}: keys [{}, {}), height {}, {} inserts, {} bupdates, pool hit ratio {:.2}, {:.0} µs of I/O",
            shard.shard,
            shard.key_lo,
            shard.key_hi,
            shard.height,
            shard.pio.inserts,
            shard.pio.bupdates,
            shard.pool.hit_ratio(),
            shard.io_elapsed_us,
        );
    }
    println!(
        "\nengine totals: {} ops, device work {:.0} µs, schedule makespan {:.0} µs → {:.2}x cross-shard I/O overlap",
        stats.rollup.searches + stats.rollup.multi_searches + stats.rollup.update_ops(),
        stats.total_io_us,
        stats.scheduled_io_us,
        stats.overlap_factor(),
    );
    println!(
        "maintenance passes that flushed at least one shard: {}",
        stats.maintenance_flushes
    );

    // ---- Crash recovery: kill the engine mid-batch, reopen, recover ----------
    //
    // A WAL-enabled engine runs every insert_batch as a two-phase flush epoch
    // over an engine-level log. Here the epoch-log backend is wrapped in the
    // fault-injection harness and the crash is scripted onto the shard-ack
    // force: every shard's sub-batch is durable in its own WAL, but the engine
    // log holds neither acks nor a commit — the exact window where naive
    // per-shard recovery would replay a batch the protocol never decided.
    // Recovery presumes abort and discards the epoch on every shard.
    println!("\n--- simulated crash mid-insert_batch ---");
    let crash_config = EngineConfig::builder()
        .shards(3)
        .profile(DeviceProfile::P300)
        .shard_capacity_bytes(1 << 28)
        .base(
            PioConfig::builder()
                .page_size(2048)
                .leaf_segments(2)
                .opq_pages(2)
                .pio_max(16)
                .pool_pages(192)
                .wal(true)
                .build(),
        )
        .build();
    let engine_wal_clock = FaultClock::new();
    let backends = EngineBackends {
        shard_stores: (0..3)
            .map(|_| Arc::new(SimPsyncIo::with_profile(DeviceProfile::P300, 1 << 28)) as Arc<dyn IoQueue>)
            .collect(),
        shard_wals: (0..3)
            .map(|_| Arc::new(SimPsyncIo::with_profile(DeviceProfile::P300, 64 << 20)) as Arc<dyn IoQueue>)
            .collect(),
        engine_wal: Some(Arc::new(FaultIo::new(
            Arc::new(SimPsyncIo::with_profile(DeviceProfile::P300, 64 << 20)),
            Arc::clone(&engine_wal_clock),
        ))),
    };
    let sample: Vec<u64> = (0..30_000).collect();
    // The fault-wrapped backends slot into the same builder every topology uses.
    let engine = EngineBuilder::new(crash_config)
        .key_sample(&sample)
        .topology(backends)
        .build()
        .expect("crash demo engine");

    // A committed batch, then one whose EpochCommit write is killed.
    let committed: Vec<(u64, u64)> = (0..600u64).map(|k| (k * 50, k)).collect();
    engine.insert_batch(&committed).expect("committed batch");
    let doomed: Vec<(u64, u64)> = (0..600u64).map(|k| (k * 50 + 1, k + 1_000_000)).collect();
    // Engine-log writes per batch: Begin force, ack force, commit force — kill
    // the second batch's ack force, so its epoch dies un-acked (presumed abort).
    engine_wal_clock.arm(CrashPlan::at_write(engine_wal_clock.writes_seen() + 1));
    let crash_err = engine.insert_batch(&doomed).expect_err("the scripted crash fires");
    println!(
        "insert_batch of {} entries died mid-protocol: {crash_err}",
        doomed.len()
    );

    let lost = engine.simulate_crash();
    engine_wal_clock.heal();
    println!("crash: {lost} queued operations lost, reopening...");
    let report = engine.recover().expect("recovery");
    println!(
        "recover(): {} committed epoch(s) replayed, {} re-driven, {} discarded ({} records dropped, {} redone)",
        report.committed_epochs,
        report.recovered_epochs,
        report.discarded_epochs,
        report.discarded_records(),
        report.redone(),
    );
    engine.checkpoint().expect("post-recovery checkpoint");
    let stats = engine.stats();
    println!(
        "EngineStats: committed_epochs {}, recovered_epochs {}, discarded_epochs {}",
        stats.committed_epochs, stats.recovered_epochs, stats.discarded_epochs
    );
    let survivors = engine.count_entries().expect("count");
    println!(
        "state after recovery: {survivors} entries — the committed batch survived in full, \
         the uncommitted one vanished on every shard"
    );
    assert_eq!(survivors, committed.len() as u64);
}
